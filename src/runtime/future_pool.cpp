#include "runtime/future_pool.hpp"

namespace curare::runtime {

FuturePool::FuturePool(std::size_t workers, obs::Recorder* rec)
    : rec_(rec) {
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  if (rec_) {
    spawned_ctr_ = &rec_->metrics.counter("future.spawned");
    touches_ = &rec_->metrics.counter("future.touches");
    touch_waits_ = &rec_->metrics.counter("future.touch_waits");
    helped_ = &rec_->metrics.counter("future.helped");
    wait_ns_ = &rec_->metrics.histogram("future.wait_ns");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

FuturePool::~FuturePool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<FutureState> FuturePool::spawn(std::function<Value()> fn) {
  auto state = std::make_shared<FutureState>();
  const std::uint64_t id =
      spawned_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(mu_);
    queue_.push_back(Task{std::move(fn), state, id});
  }
  if (rec_) {
    spawned_ctr_->add();
    rec_->tracer.instant(obs::EventKind::kFutureSpawn, id);
  }
  cv_.notify_one();
  return state;
}

void FuturePool::run_task(Task& t) {
  std::uint64_t t0 = 0;
  if (rec_) t0 = rec_->tracer.now_ns();
  Value v;
  std::exception_ptr err;
  try {
    v = t.fn();
  } catch (...) {
    err = std::current_exception();
  }
  if (rec_) rec_->tracer.span(obs::EventKind::kFutureRun, t0, t.id);
  {
    std::lock_guard<std::mutex> g(t.state->mu);
    t.state->value = v;
    t.state->error = err;
    t.state->done = true;
  }
  t.state->cv.notify_all();
}

bool FuturePool::run_one_task() {
  Task t;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (queue_.empty()) return false;
    t = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(t);
  return true;
}

void FuturePool::worker_loop(std::size_t worker_index) {
  if (rec_) {
    rec_->tracer.name_thread("future-worker-" +
                             std::to_string(worker_index));
  }
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_.wait(g, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(t);
  }
}

Value FuturePool::touch(const std::shared_ptr<FutureState>& f) {
  if (rec_) touches_->add();
  // Help-first waiting: executing queued tasks while the target is
  // unresolved keeps a bounded pool deadlock-free even when futures
  // depend on queued futures.
  bool waited = false;
  std::uint64_t wait_start = 0, helped = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> g(f->mu);
      if (!f->done && !waited && rec_) {
        waited = true;
        wait_start = rec_->tracer.now_ns();
        touch_waits_->add();
      }
      if (f->done) {
        if (rec_ && waited) {
          const std::uint64_t end = rec_->tracer.now_ns();
          wait_ns_->observe(end > wait_start ? end - wait_start : 0);
          helped_->add(helped);
          rec_->tracer.emit(obs::EventKind::kFutureTouchWait, wait_start,
                            end > wait_start ? end - wait_start : 0, 0,
                            helped);
        }
        if (f->error) std::rethrow_exception(f->error);
        return f->value;
      }
    }
    if (run_one_task()) {
      ++helped;
    } else {
      // Nothing left to help with: the target was already dequeued (a
      // task is pushed exactly once, before it can resolve), so some
      // thread is executing it and will notify f->cv on completion — a
      // plain predicate wait, with no polling timeout, cannot miss it.
      std::unique_lock<std::mutex> g(f->mu);
      f->cv.wait(g, [&] { return f->done; });
    }
  }
}

}  // namespace curare::runtime
