// Runtime facade: owns the lock manager and future pool, and installs
// the primitive operations that Curare-transformed programs call:
//
//   (%lock cell 'field ['read|'write])     §3.2.1 Lock(M)
//   (%unlock cell 'field ['read|'write])   §3.2.1 Unlock(M)
//   (%lock-var 'v) (%unlock-var 'v)        variable-location locks
//   (%atomic-add cell 'field delta)        §3.2.3 reordered atomic update
//   (%atomic-incf-var 'v delta)            §3.2.3 for variables
//   (%cri-enqueue site args…)              §4 recursive call → enqueue
//   (%cri-run fn num-sites servers args…)  §4 start a server pool
//   (spawn thunk) / futures via the `future` special form; (touch x)
//   (force-tree x)                          resolve futures inside a tree
//
// Installing the runtime also arms the interpreter's future/touch hooks,
// switching `future` from eager (uniprocessor) to pooled execution.
#pragma once

#include <memory>
#include <mutex>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "obs/recorder.hpp"
#include "runtime/future_pool.hpp"
#include "runtime/lock_manager.hpp"
#include "runtime/resilience.hpp"
#include "runtime/server_pool.hpp"

namespace curare::runtime {

class Runtime : public gc::RootSource {
 public:
  /// Binds to an interpreter; `workers` sizes the future pool (0 =
  /// hardware concurrency). Call install() to register primitives.
  /// Construction also wires the heap's collector into the runtime:
  /// the future pool gets safepoint-aware sleeps, and every GC pause
  /// reports into the cri.gc.* metrics and the trace (kGcPause spans).
  explicit Runtime(lisp::Interp& interp, std::size_t workers = 0);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  void install();

  /// Register the primitives in an *additional* interpreter that shares
  /// this Runtime's lock manager, future pool, watchdog, and recorder.
  /// This is the serving layer's multi-session shape: one process-wide
  /// Runtime, one Interp per session (isolated globals), all sessions
  /// contending on the same locks and drawing from the same pools.
  /// Interp-dependent primitives (%cri-run, futures, %locked-update-var)
  /// route through the *calling* interpreter, so a session's CRI run
  /// resolves functions in that session's environment.
  void install_into(lisp::Interp& in);

  LockManager& locks() { return locks_; }
  FuturePool& futures() { return futures_; }
  Watchdog& watchdog() { return watchdog_; }

  /// Whole-run wall-clock budget applied to every subsequent CRI run
  /// (0 = unlimited). The CLI's --deadline-ms lands here.
  void set_deadline_ms(std::int64_t ms) {
    deadline_ms_.store(ms, std::memory_order_relaxed);
  }
  std::int64_t deadline_ms() const {
    return deadline_ms_.load(std::memory_order_relaxed);
  }

  /// No-completion window before the watchdog aborts a CRI run
  /// (0 = watchdog off). The CLI's --stall-ms lands here.
  void set_stall_ms(std::int64_t ms) {
    stall_ms_.store(ms, std::memory_order_relaxed);
  }
  std::int64_t stall_ms() const {
    return stall_ms_.load(std::memory_order_relaxed);
  }

  /// Human-readable resilience state: configured limits, stall/abort
  /// counters, fault-injector report, currently held locks. Backs the
  /// REPL's :resilience command. (Non-const: reading a counter through
  /// the registry may create it.)
  std::string resilience_report();

  /// The observability bundle every component reports into: tracer
  /// (off by default — obs().tracer.set_enabled(true) to record),
  /// metrics registry, and the measured-vs-predicted speedup report.
  obs::Recorder& obs() { return recorder_; }
  const obs::Recorder& obs() const { return recorder_; }

  /// Run a transformed server-body function under a CRI pool. `label`
  /// names the run in the speedup report (§4.1 T(S) comparison);
  /// `batch` is the per-server dequeue batch limit (1 = classic).
  /// If the calling thread has a CancelState installed (a CLI batch
  /// token or a serving-layer request token), the run's own token is
  /// chained under it, so cancelling the request aborts the run.
  CriStats run_cri(sexpr::Value fn, std::size_t num_sites,
                   std::size_t servers, TaskArgs initial_args,
                   std::string label = {}, std::size_t batch = 1);

  /// Same, but executing in an explicit interpreter — the per-session
  /// entry point used by install_into()'s %cri-run.
  CriStats run_cri_in(lisp::Interp& in, sexpr::Value fn,
                      std::size_t num_sites, std::size_t servers,
                      TaskArgs initial_args, std::string label = {},
                      std::size_t batch = 1);

  const CriStats& last_cri_stats() const { return last_stats_; }

  /// Walk a cons tree, forcing every future found (destructively
  /// replacing it with its value). Returns the (possibly replaced) root.
  sexpr::Value force_tree(sexpr::Value v);

  /// Collector callback (world stopped): the last CRI run's result
  /// Value is retrievable via last_cri_stats(), so it stays live.
  void gc_roots(std::vector<sexpr::Value>& out) override;

 private:
  lisp::Interp& interp_;
  obs::Recorder recorder_;  ///< before locks_/futures_: they point at it
  LockManager locks_;
  FuturePool futures_;
  Watchdog watchdog_;
  std::atomic<std::int64_t> deadline_ms_{0};
  std::atomic<std::int64_t> stall_ms_{0};
  /// Guards last_stats_.result against the collector's gc_roots
  /// (run_cri stores it outside any unsafe region).
  std::mutex stats_mu_;
  CriStats last_stats_;
};

}  // namespace curare::runtime
