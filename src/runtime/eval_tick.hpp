// Shared evaluation-tick helper: one cancellation-poll implementation
// for both evaluation engines (DESIGN.md §10, §13).
//
// The tree-walking interpreter advances the tick once per eval step;
// the bytecode VM advances it once per executed instruction. Every
// 64th step funnels into runtime::poll_cancellation(), so a busy (not
// blocked) server can outlive its run's deadline by at most 64 steps
// regardless of which engine is running it — and the sampling profiler
// rides the same counter, so its period arithmetic is identical under
// both engines. The process-wide poll count is the "one metric" the
// two engines share: it feeds the resilience report and lets tests
// assert that preemption points were actually reached.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/profiler.hpp"
#include "runtime/resilience.hpp"
#include "runtime/resource.hpp"

namespace curare::runtime {

/// Steps (eval steps / VM instructions) between cancellation polls.
/// Power of two; the profiler's minimum period (8) divides it.
inline constexpr unsigned kEvalPollPeriod = 64;

namespace detail {
inline std::atomic<std::uint64_t> g_eval_polls{0};
inline thread_local unsigned g_eval_tick = 0;
}  // namespace detail

/// How many times either engine reached a cancellation poll point
/// (process-wide, all threads, both engines).
inline std::uint64_t eval_poll_count() {
  return detail::g_eval_polls.load(std::memory_order_relaxed);
}

/// Advance this thread's eval tick one step; poll cancellation and
/// charge eval fuel on every kEvalPollPeriod-th step. Returns the tick
/// so the caller can drive the profiler off the same counter.
///
/// Fuel rides the same poll the deadline does, so both engines (one
/// tick per tree-walk step, one per VM instruction) get the same
/// bound with the same ≤ kEvalPollPeriod-step overshoot — and a
/// pure-arith loop that never allocates is still clipped.
inline unsigned eval_tick_step() {
  const unsigned tick = ++detail::g_eval_tick;
  if ((tick & (kEvalPollPeriod - 1)) == 0) {
    detail::g_eval_polls.fetch_add(1, std::memory_order_relaxed);
    poll_cancellation();
    charge_fuel(kEvalPollPeriod);
  }
  return tick;
}

/// True when this tick should take a profiler sample. The &7 pre-check
/// keeps the disarmed cost to the tick itself (the profiler's period
/// is a power of two ≥ 8).
inline bool eval_tick_profile_due(unsigned tick) {
  return (tick & 0x7) == 0 && obs::Profiler::due(tick);
}

}  // namespace curare::runtime
