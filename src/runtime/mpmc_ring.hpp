// Bounded lock-free MPMC ring buffer (Vyukov's bounded queue).
//
// Each cell carries a sequence number: a cell is pushable when
// seq == enqueue position, poppable when seq == dequeue position + 1.
// Producers and consumers reserve a cell with one CAS on their own
// cursor, then publish with a release store on the cell's sequence —
// no mutex anywhere, and the only contended lines are the two cursors
// (kept on separate cache lines).
//
// This is the per-call-site fast path of the sharded CRI scheduler
// (paper §4.1): "each server only needs to obtain the arguments to an
// invocation" — obtaining them must not serialize all servers through
// one lock. The ring is bounded; the scheduler layers an unbounded
// mutex-guarded spill deque behind it for the rare overflow.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace curare::runtime {

template <typename T>
class MpmcRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// False when the ring is full; `v` is left untouched in that case.
  bool try_push(T&& v) {
    Cell* c;
    std::size_t pos = enq_.load(std::memory_order_relaxed);
    for (;;) {
      c = &cells_[pos & mask_];
      const std::size_t seq = c->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enq_.compare_exchange_weak(pos, pos + 1,
                                       std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enq_.load(std::memory_order_relaxed);
      }
    }
    c->data = std::move(v);
    c->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-producer push: no CAS on the enqueue cursor, just one
  /// acquire load, two plain stores and the publishing release store.
  /// Callers must guarantee they are the ring's only producer (the
  /// work-stealing scheduler's owner-push path — each lane's rings are
  /// fed exclusively by the lane owner); consumers may race freely.
  /// False when the ring is full; `v` is left untouched in that case.
  bool try_push_sp(T&& v) {
    const std::size_t pos = enq_.load(std::memory_order_relaxed);
    Cell& c = cells_[pos & mask_];
    const std::size_t seq = c.seq.load(std::memory_order_acquire);
    // seq < pos ⇒ the consumer of lap-1 hasn't released the cell (full);
    // seq > pos is impossible with a single producer.
    if (seq != pos) return false;
    c.data = std::move(v);
    c.seq.store(pos + 1, std::memory_order_release);
    enq_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// False when the ring is empty (or every present item is still being
  /// published by its producer — callers retry off their own depth
  /// accounting).
  bool try_pop(T& out) {
    Cell* c;
    std::size_t pos = deq_.load(std::memory_order_relaxed);
    for (;;) {
      c = &cells_[pos & mask_];
      const std::size_t seq = c->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (deq_.compare_exchange_weak(pos, pos + 1,
                                       std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = deq_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(c->data);
    c->data = T{};  // drop payload refs eagerly
    c->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate (exact when quiescent).
  std::size_t approx_size() const {
    const std::size_t e = enq_.load(std::memory_order_relaxed);
    const std::size_t d = deq_.load(std::memory_order_relaxed);
    return e > d ? e - d : 0;
  }

  /// Racy emptiness probe: one acquire load, no CAS. A false negative
  /// is possible mid-publish; callers pair this with depth accounting.
  bool probably_empty() const {
    const std::size_t pos = deq_.load(std::memory_order_relaxed);
    const std::size_t seq =
        cells_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::intptr_t>(seq) <
           static_cast<std::intptr_t>(pos + 1);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Visit every item currently in the ring, oldest first. Quiescent
  /// callers only (no concurrent push/pop) — used by the collector to
  /// enumerate pending task arguments while the world is stopped.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t d = deq_.load(std::memory_order_acquire);
    const std::size_t e = enq_.load(std::memory_order_acquire);
    for (std::size_t pos = d; pos < e; ++pos) {
      const Cell& c = cells_[pos & mask_];
      if (c.seq.load(std::memory_order_acquire) == pos + 1) fn(c.data);
    }
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T data{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enq_{0};
  alignas(64) std::atomic<std::size_t> deq_{0};
};

}  // namespace curare::runtime
