#include "runtime/resilience.hpp"

#include <algorithm>

#include "obs/recorder.hpp"

namespace curare::runtime {

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::set_recorder(obs::Recorder* rec) {
  if (rec != nullptr) stalls_ctr_ = &rec->metrics.counter("cri.stalls");
}

std::uint64_t Watchdog::arm(std::shared_ptr<CancelState> tok,
                            std::function<std::uint64_t()> progress,
                            std::chrono::milliseconds stall,
                            std::string label) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> g(mu_);
    id = next_id_++;
    entries_.push_back(Entry{id, std::move(tok), std::move(progress),
                             stall, std::move(label), 0,
                             std::chrono::steady_clock::now()});
    entries_.back().last_value = entries_.back().progress();
    if (!started_) {
      started_ = true;
      thread_ = std::thread([this] { loop(); });
    }
  }
  cv_.notify_all();
  return id;
}

void Watchdog::disarm(std::uint64_t id) {
  std::unique_lock<std::mutex> g(mu_);
  std::erase_if(entries_, [id](const Entry& e) { return e.id == id; });
  // If the loop snapshotted this entry and is firing its token right
  // now (outside mu_, possibly inside a dump_fn that walks state owned
  // by the disarming caller), returning early would let the caller
  // destroy that state mid-dump. Wait the fire out.
  fire_cv_.wait(g, [this, id] {
    return std::find(firing_ids_.begin(), firing_ids_.end(), id) ==
           firing_ids_.end();
  });
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> g(mu_);
  for (;;) {
    if (stop_) return;
    // Wake often enough to detect the tightest armed stall window with
    // ~25% slack, but never spin: idle (no entries) waits indefinitely.
    auto period = std::chrono::milliseconds(250);
    for (const Entry& e : entries_) {
      period = std::min(period, std::max(e.stall / 4,
                                         std::chrono::milliseconds(5)));
    }
    if (entries_.empty()) {
      cv_.wait(g, [this] { return stop_ || !entries_.empty(); });
      continue;
    }
    cv_.wait_for(g, period);
    if (stop_) return;

    const auto now = std::chrono::steady_clock::now();
    // Collect fired tokens first, then cancel them OUTSIDE mu_: a
    // dump_fn may take arbitrary runtime locks, and arm() callers must
    // never wait on a dump in progress. Each fired id is published in
    // firing_ids_ while its cancel runs, so disarm() can tell "erased"
    // apart from "erased but still being dumped" and block on the
    // latter.
    struct Fire {
      std::uint64_t id;
      std::shared_ptr<CancelState> tok;
      std::string why;
    };
    std::vector<Fire> to_fire;
    for (Entry& e : entries_) {
      if (e.fired) continue;
      const std::uint64_t v = e.progress();
      if (v != e.last_value) {
        e.last_value = v;
        e.last_change = now;
        continue;
      }
      if (now - e.last_change >= e.stall) {
        e.fired = true;
        firing_ids_.push_back(e.id);
        to_fire.push_back(Fire{
            e.id, e.tok,
            "watchdog: no task completed in " +
                std::to_string(e.stall.count()) + " ms (" + e.label +
                ")"});
      }
    }
    if (!to_fire.empty()) {
      g.unlock();
      for (Fire& f : to_fire) {
        f.tok->cancel(f.why);
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (stalls_ctr_ != nullptr) stalls_ctr_->add();
      }
      g.lock();
      for (const Fire& f : to_fire) std::erase(firing_ids_, f.id);
      fire_cv_.notify_all();
    }
  }
}

}  // namespace curare::runtime
