#include "runtime/server_pool.hpp"

#include <vector>

namespace curare::runtime {

namespace {
thread_local CriRun* g_current_run = nullptr;

struct CurrentRunGuard {
  explicit CurrentRunGuard(CriRun* r) : prev(g_current_run) {
    g_current_run = r;
  }
  ~CurrentRunGuard() { g_current_run = prev; }
  CriRun* prev;
};
}  // namespace

CriRun* CriRun::current() { return g_current_run; }

CriRun::CriRun(lisp::Interp& interp, sexpr::Value fn,
               std::size_t num_sites, std::size_t servers)
    : interp_(interp),
      fn_(fn),
      queues_(num_sites),
      servers_(servers == 0 ? 1 : servers) {}

void CriRun::enqueue(std::size_t site, TaskArgs args) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  queues_.push(site, std::move(args));
}

void CriRun::finish(sexpr::Value result) {
  {
    std::lock_guard<std::mutex> g(result_mu_);
    if (finished_early_) return;  // first result wins
    finished_early_ = true;
    result_ = result;
  }
  queues_.close();  // kill tokens for every server
}

void CriRun::serve() {
  CurrentRunGuard guard(this);
  while (auto task = queues_.pop()) {
    invocations_.fetch_add(1, std::memory_order_relaxed);
    try {
      interp_.apply(fn_, *task);
    } catch (...) {
      {
        std::lock_guard<std::mutex> g(err_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      queues_.close();
      return;
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // This invocation finished the recursion: kill the servers.
      queues_.close();
    }
  }
}

CriStats CriRun::run(TaskArgs initial_args) {
  pending_.store(1, std::memory_order_relaxed);
  queues_.push(0, std::move(initial_args));

  std::vector<std::thread> threads;
  threads.reserve(servers_);
  for (std::size_t i = 0; i < servers_; ++i)
    threads.emplace_back([this] { serve(); });
  for (std::thread& t : threads) t.join();

  if (first_error_) std::rethrow_exception(first_error_);

  CriStats stats;
  stats.invocations = invocations_.load(std::memory_order_relaxed);
  stats.max_queue_length = queues_.max_length();
  stats.servers = servers_;
  {
    std::lock_guard<std::mutex> g(result_mu_);
    stats.result = result_;
    stats.finished_early = finished_early_;
  }
  return stats;
}

}  // namespace curare::runtime
