#include "runtime/server_pool.hpp"

#include <sstream>
#include <vector>

#include "runtime/fault_injector.hpp"

namespace curare::runtime {

namespace {
thread_local CriRun* g_current_run = nullptr;
// Timestamp (Tracer::now_ns) of the serving thread's most recent
// %cri-enqueue inside the current task body; 0 between tasks. This is
// the head/tail boundary: the paper's head H ends at the last recursive
// call the invocation issues.
thread_local std::uint64_t g_last_enqueue_ns = 0;

struct CurrentRunGuard {
  explicit CurrentRunGuard(CriRun* r) : prev(g_current_run) {
    g_current_run = r;
  }
  ~CurrentRunGuard() { g_current_run = prev; }
  CriRun* prev;
};
}  // namespace

CriRun* CriRun::current() { return g_current_run; }

CriRun::CriRun(lisp::Interp& interp, sexpr::Value fn,
               std::size_t num_sites, std::size_t servers,
               obs::Recorder* rec, std::string label)
    : interp_(interp),
      gc_(interp.ctx().heap.gc()),
      fn_(fn),
      // Lane sizing: one lane per server plus one for the caller, so
      // the thread seeding the initial task keeps its own lane and
      // every server still claims one. (Raw ctor argument on purpose:
      // servers_ is declared after queues_ and not yet initialized.)
      queues_(num_sites, (servers == 0 ? 1 : servers) + 1),
      servers_(servers == 0 ? 1 : servers),
      rec_(rec),
      label_(std::move(label)) {
  if (rec_) {
    qdepth_ = &rec_->metrics.histogram(
        "cri.queue_depth", obs::Histogram::default_depth_bounds());
  }
  busy_ns_.assign(servers_, 0);
  idle_ns_.assign(servers_, 0);
  tasks_per_server_.assign(servers_, 0);
  queues_.attach_gc(&gc_);
  gc_.add_root_source(this);
}

CriRun::~CriRun() { gc_.remove_root_source(this); }

void CriRun::gc_roots(std::vector<sexpr::Value>& out) {
  out.push_back(fn_);
  {
    std::lock_guard<std::mutex> g(result_mu_);
    out.push_back(result_);
  }
  queues_.for_each_task([&out](const TaskArgs& args) {
    for (const sexpr::Value& v : args) out.push_back(v);
  });
}

void CriRun::enqueue(std::size_t site, TaskArgs args) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  std::size_t depth = 0;
  try {
    depth = queues_.push(site, std::move(args));
  } catch (...) {
    // A push that throws (bad site, injected fault) enqueued nothing:
    // take the increment back or the run never terminates. The count
    // cannot reach zero here — the calling task still holds its own
    // pending unit until it completes — so no close() is needed.
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  if (rec_) {
    g_last_enqueue_ns = rec_->tracer.now_ns();
    enqueues_.fetch_add(1, std::memory_order_relaxed);
    qdepth_->observe(depth);
    rec_->tracer.instant(obs::EventKind::kTaskEnqueue, site, depth);
  }
}

void CriRun::finish(sexpr::Value result) {
  {
    std::lock_guard<std::mutex> g(result_mu_);
    if (finished_early_) return;  // first result wins
    finished_early_ = true;
    result_ = result;
  }
  // Servers discard (rather than execute) anything still queued, while
  // keeping the pending-task accounting exact.
  stop_.store(true, std::memory_order_release);
  if (rec_) rec_->tracer.instant(obs::EventKind::kEarlyFinish);
  queues_.close();  // kill tokens for every server
}

std::string CriRun::dump_state() const {
  std::ostringstream os;
  os << "cri run '" << (label_.empty() ? "<unlabelled>" : label_)
     << "': " << servers_ << " server(s), " << queues_.sites()
     << " site(s)\n";
  os << "  pending tasks: " << pending_.load(std::memory_order_relaxed)
     << ", queue depth: " << queues_.depth() << " (max "
     << queues_.max_length() << ")\n";
  os << "  invocations started: "
     << invocations_.load(std::memory_order_relaxed)
     << ", completed: " << completions_.load(std::memory_order_relaxed)
     << ", enqueues: " << enqueues_.load(std::memory_order_relaxed)
     << "\n";
  std::string out = os.str();
  if (resil_.extra_dump) {
    try {
      out += resil_.extra_dump();
    } catch (...) {
      out += "(extra diagnostics failed)\n";
    }
  }
  return out;
}

void CriRun::serve(std::size_t server_index) {
  CurrentRunGuard guard(this);
  // Make this run's token the thread's current one: every blocking
  // primitive the body reaches (eval loop, lock waits, touch) now
  // polls it. Null-token scope when resilience is off.
  CancelScope cancel_scope(token_.get());
  // Work done here belongs to the request that started the run: spans
  // this server emits and lock waits it suffers attribute to it.
  obs::RequestScope req_scope(req_ctx_);
  if (rec_) {
    rec_->tracer.name_thread("cri-server-" +
                             std::to_string(server_index));
  }
  std::uint64_t busy = 0, idle = 0, tasks = 0;
  // One timestamp carries across loop iterations: the end of a task is
  // the start of the next wait, so the steady state costs two clock
  // reads per task, not three.
  std::uint64_t t_wait = rec_ ? rec_->tracer.now_ns() : 0;
  std::vector<TaskArgs> batch;
  batch.reserve(batch_limit_);
  for (;;) {
    // Quiescent point between batches: no Lisp values live on this
    // thread's stack here, so it may run (or help) a collection. The
    // MutatorScope then covers the pop itself — popped arguments leave
    // the queue's root set the instant they are dequeued, so the
    // dequeue must already be inside the unsafe region (the scheduler's
    // sleep path releases it around blocking waits).
    gc_.maybe_collect();
    gc::MutatorScope gc_scope(gc_);
    std::size_t site = 0;
    batch.clear();
    std::size_t got = 0;
    try {
      got = queues_.pop_some(batch, batch_limit_, &site);
    } catch (...) {
      // A pop can throw: the work-stealing scheduler's queue.steal
      // fault site injects there. Route it through the body-error
      // path — record, switch to drain mode, keep looping. Nothing
      // was popped, so pending_ is untouched and the termination
      // accounting stays exact; the drain itself retries through
      // further injected throws until the queues empty.
      {
        std::lock_guard<std::mutex> g(err_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      stop_.store(true, std::memory_order_release);
      queues_.close();
      continue;
    }
    std::uint64_t t0 = 0;
    if (rec_) {
      t0 = rec_->tracer.now_ns();
      idle += t0 - t_wait;
      rec_->tracer.emit(obs::EventKind::kServerIdle, t_wait, t0 - t_wait,
                        server_index);
      t_wait = t0;
    }
    if (got == 0) break;  // kill token

    for (std::size_t k = 0; k < got; ++k) {
      // Deadline/watchdog abort: record the StallError as the run's
      // first error and switch to drain mode — exactly the body-throw
      // path, so re-runnability follows for free. Busy servers reach
      // the same state through the eval loop's poll_cancellation().
      if (token_ && !stop_.load(std::memory_order_acquire) &&
          token_->should_abort()) {
        {
          std::lock_guard<std::mutex> g(err_mu_);
          if (!first_error_) {
            try {
              token_->raise();
            } catch (...) {
              first_error_ = std::current_exception();
            }
          }
        }
        stop_.store(true, std::memory_order_release);
        queues_.close();
      }
      // After %cri-finish or a body error, drain without executing —
      // but every popped task still decrements pending_ exactly once,
      // so the termination accounting stays consistent and the run can
      // be retried on this same CriRun.
      if (!stop_.load(std::memory_order_acquire)) {
        const std::uint64_t inv =
            invocations_.fetch_add(1, std::memory_order_relaxed);
        g_last_enqueue_ns = 0;
        bool failed = false;
        try {
          FaultInjector::instance().check(
              FaultInjector::Site::kTaskRun);
          interp_.apply(fn_, batch[k]);
        } catch (...) {
          {
            std::lock_guard<std::mutex> g(err_mu_);
            if (!first_error_) first_error_ = std::current_exception();
          }
          stop_.store(true, std::memory_order_release);
          queues_.close();
          failed = true;
        }
        // The watchdog's progress signal: bodies that *finish*, pass
        // or fail. (Starts can't be the signal — a wedged body starts
        // and never ends; enqueues can't either — an infinite
        // re-enqueue loop "progresses" forever, and bounding that is
        // the deadline's job.)
        completions_.fetch_add(1, std::memory_order_relaxed);
        if (rec_ && !failed) {
          const std::uint64_t t1 = rec_->tracer.now_ns();
          busy += t1 - t0;
          ++tasks;
          // Head runs until the last enqueue this invocation issued; a
          // base case (no enqueue) is pure head.
          const std::uint64_t head_end =
              (g_last_enqueue_ns > t0 && g_last_enqueue_ns < t1)
                  ? g_last_enqueue_ns
                  : t1;
          head_ns_.fetch_add(head_end - t0, std::memory_order_relaxed);
          tail_ns_.fetch_add(t1 - head_end, std::memory_order_relaxed);
          rec_->tracer.emit(obs::EventKind::kTaskRun, t0, t1 - t0,
                            server_index, inv);
          t0 = t1;
          t_wait = t1;
        }
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // This invocation finished the recursion: kill the servers.
        queues_.close();
      }
    }
  }
  if (rec_) {
    busy_ns_[server_index] = busy;
    idle_ns_[server_index] = idle;
    tasks_per_server_[server_index] = tasks;
  }
}

CriStats CriRun::run(TaskArgs initial_args) {
  // Reset termination accounting and reopen the queues, so a CriRun
  // can be re-run after an aborted (thrown) or early-finished run.
  queues_.reopen();
  stop_.store(false, std::memory_order_relaxed);
  invocations_.store(0, std::memory_order_relaxed);
  completions_.store(0, std::memory_order_relaxed);
  enqueues_.store(0, std::memory_order_relaxed);
  head_ns_.store(0, std::memory_order_relaxed);
  tail_ns_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(err_mu_);
    first_error_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> g(result_mu_);
    finished_early_ = false;
    result_ = sexpr::Value::nil();
  }
  busy_ns_.assign(servers_, 0);
  idle_ns_.assign(servers_, 0);
  tasks_per_server_.assign(servers_, 0);

  // Carry the caller's request identity into the server threads (nil
  // outside a serving request).
  req_ctx_ = obs::current_request();
  // A fresh token every run: a fired token from an aborted run must
  // not poison the retry. Servers read token_ only between here and
  // the join below.
  token_ = std::make_shared<CancelState>();
  token_->dump_fn = [this] { return dump_state(); };
  if (resil_.deadline_ms > 0) token_->set_deadline_ms(resil_.deadline_ms);
  token_->set_parent(resil_.parent);
  // Scope guard rather than a bare id: the initial push and the server
  // spawns below can throw (an injected kQueuePush fault, or
  // std::system_error out of std::thread), and an entry left armed past
  // this frame would have the watchdog call progress()/dump_state() on
  // a destroyed CriRun.
  struct WatchdogGuard {
    Watchdog* wd = nullptr;
    std::uint64_t id = 0;
    void disarm() {
      if (wd != nullptr && id != 0) {
        wd->disarm(id);
        id = 0;
      }
    }
    ~WatchdogGuard() { disarm(); }
  } wd_guard;
  if (resil_.watchdog != nullptr && resil_.stall_ms > 0) {
    wd_guard.wd = resil_.watchdog;
    wd_guard.id = resil_.watchdog->arm(
        token_,
        [this] { return completions_.load(std::memory_order_relaxed); },
        std::chrono::milliseconds(resil_.stall_ms),
        label_.empty() ? std::string("cri-run") : label_);
  }

  std::uint64_t t_start = 0;
  if (rec_) t_start = rec_->tracer.now_ns();

  {
    // Keep the initial arguments alive across the hand-off into the
    // queue (they are rooted by the queue only once pushed).
    gc::MutatorScope gc_scope(gc_);
    pending_.store(1, std::memory_order_relaxed);
    queues_.push(0, std::move(initial_args));
  }

  std::vector<std::thread> threads;
  threads.reserve(servers_);
  // Release this thread's unsafe region across the join: the caller is
  // typically blocked here inside a stack of Interp::apply/eval frames
  // (the $parallel wrapper), and holding their MutatorScopes for the
  // whole run would keep unsafe_ nonzero — no collection could ever
  // stop the world mid-run, and a server's collect() would deadlock in
  // phase A. Everything those suspended frames hold stays reachable
  // through their EvalFrame shadow-stack roots; this run's own state is
  // rooted by gc_roots() above.
  const std::size_t gc_depth = gc_.blocking_release();
  try {
    for (std::size_t i = 0; i < servers_; ++i)
      threads.emplace_back([this, i] { serve(i); });
    for (std::thread& t : threads) t.join();
  } catch (...) {
    // A failed spawn leaves the earlier servers running: close the
    // queues so they drain out and join them (a still-joinable thread
    // in ~thread terminates the process), then restore the guard
    // ordering below — disarm before reacquire — before unwinding.
    stop_.store(true, std::memory_order_release);
    queues_.close();
    for (std::thread& t : threads) t.join();
    token_->set_parent(nullptr);  // the borrowed parent may die with us
    wd_guard.disarm();
    gc_.blocking_reacquire(gc_depth);
    throw;
  }
  // Unchain before the borrowed parent token's frame can unwind: the
  // member token_ outlives this run() call.
  token_->set_parent(nullptr);
  // Disarm before reacquiring: blocking_reacquire may park behind a
  // long stop-the-world, and a still-armed watchdog would read that
  // pause as a stall of an already-finished run. disarm() also waits
  // out any in-flight fire, so no dump_state() can still be running
  // once this frame (and with it the CriRun) goes away.
  wd_guard.disarm();
  gc_.blocking_reacquire(gc_depth);

  if (first_error_) {
    if (rec_) rec_->metrics.counter("cri.aborts").add();
    std::rethrow_exception(first_error_);
  }

  CriStats stats;
  stats.invocations = invocations_.load(std::memory_order_relaxed);
  stats.max_queue_length = queues_.max_length();
  stats.servers = servers_;
  stats.queue = queues_.stats();
  {
    std::lock_guard<std::mutex> g(result_mu_);
    stats.result = result_;
    stats.finished_early = finished_early_;
  }
  if (rec_) {
    stats.wall_ns = rec_->tracer.now_ns() - t_start;
    stats.enqueues = enqueues_.load(std::memory_order_relaxed);
    stats.head_ns = head_ns_.load(std::memory_order_relaxed);
    stats.tail_ns = tail_ns_.load(std::memory_order_relaxed);
    stats.busy_ns = busy_ns_;
    stats.idle_ns = idle_ns_;
    stats.tasks_per_server = tasks_per_server_;

    obs::Metrics& m = rec_->metrics;
    m.counter("cri.invocations").add(stats.invocations);
    m.counter("cri.enqueues").add(stats.enqueues);
    m.counter("cri.head_ns").add(stats.head_ns);
    m.counter("cri.tail_ns").add(stats.tail_ns);
    m.counter("cri.busy_ns").add(stats.busy_ns_total());
    m.counter("cri.idle_ns").add(stats.idle_ns_total());
    m.counter("cri.queue.notify_sent").add(stats.queue.notify_sent);
    m.counter("cri.queue.notify_suppressed")
        .add(stats.queue.notify_suppressed);
    m.counter("cri.queue.spill_pushes").add(stats.queue.spill_pushes);
    m.counter("cri.queue.sleeps").add(stats.queue.sleeps);
    m.counter("cri.queue.pop_calls").add(stats.queue.pop_calls);
    m.counter("cri.queue.steals").add(stats.queue.steals);

    obs::MeasuredRun mr;
    mr.label = label_;
    mr.servers = stats.servers;
    mr.invocations = stats.invocations;
    mr.wall_ns = stats.wall_ns;
    mr.head_ns = stats.head_ns;
    mr.tail_ns = stats.tail_ns;
    mr.busy_ns = stats.busy_ns_total();
    mr.idle_ns = stats.idle_ns_total();
    rec_->speedup.add(std::move(mr));
  }
  return stats;
}

}  // namespace curare::runtime
