// Resource governance: per-request memory quotas, eval fuel, and the
// heap high-watermark error (DESIGN.md §14).
//
// Deadlines (PR 4) bound *time*; this layer bounds *space* and *work*.
// The accounting rides the contexts that already follow a request
// across threads: obs::RequestContext (installed via RequestScope on
// the socket thread and captured by CRI servers and future workers)
// carries the request's byte and fuel budgets, and the charge points
// are the two places every engine already passes through —
//
//   gc::GcHeap::allocate   charges bytes before the cell is carved, so
//                          a quota breach throws with nothing half-
//                          built (the same unwind path the gc.alloc
//                          fault-injection site proves safe);
//   runtime::eval_tick     charges fuel on the shared 1-in-64 poll, so
//                          both the tree walker and the bytecode VM
//                          are bounded — a pure-arith loop that never
//                          allocates still runs out of fuel, with at
//                          most kEvalPollPeriod steps of overshoot
//                          (the same bound deadlines already accept).
//
// Crossing a budget raises ResourceExhausted — a LispError subclass,
// so every existing unwind path (session catch ladder, CRI abort-and-
// rerun, future error propagation) treats it like a user-program
// error: exactly that request dies, the session stays usable, and the
// daemon answers with the structured `resource-exhausted` status.
//
// Header-only on purpose, like fault_injector.hpp: gc is a lower
// layer than runtime and hooks the charge point without gaining a
// link dependency.
#pragma once

#include <cstdint>
#include <string>

#include "obs/request.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

/// A request exceeded one of its resource budgets (or the process
/// heap crossed the hard watermark while it was allocating). The kind
/// discriminates the budget for metrics and tests; the message is the
/// human-readable diagnosis that rides the wire.
class ResourceExhausted : public sexpr::LispError {
 public:
  enum class Kind {
    kMemQuota,  ///< per-request allocation quota
    kHeapHard,  ///< process heap crossed the hard watermark
    kFuel,      ///< per-request eval-step budget
    kResultCap, ///< reply exceeded the serve result/output cap
  };

  ResourceExhausted(Kind kind, std::string msg)
      : LispError(std::move(msg)), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

namespace detail {

/// Per-thread quota reservation: bytes already fetch_add'ed into a
/// request's mem_used but not yet consumed by this thread's
/// allocations. The same amortization the bump allocator uses for
/// blocks — the shared counter is touched once per kQuotaChunk bytes,
/// not once per cons — which is what keeps the accounting inside the
/// 3% bench_heap acceptance bar.
///
/// Keyed by context address, never dereferenced: when the thread
/// switches requests the stale reservation is dropped (those bytes
/// were already charged, so the quota errs strict, never leaks).
/// Address reuse can in principle hand ≤ one chunk of a dead
/// request's reservation to its successor — a bounded, one-sided
/// under-charge accepted for a branch-free fast path.
struct QuotaReservation {
  const obs::RequestContext* rc = nullptr;
  std::uint64_t remaining = 0;
};
inline thread_local QuotaReservation g_quota_reservation;

/// Reservation granularity; also the quota's effective resolution
/// (a breach may be detected up to one chunk per thread early —
/// strict, per the comment above — never late).
inline constexpr std::uint64_t kQuotaChunk = 16 * 1024;

}  // namespace detail

/// Charge `bytes` of fresh allocation to the calling thread's current
/// request; throws ResourceExhausted once the request's quota is
/// crossed. No-op (one thread-local load) when no request is in scope
/// or the request carries no quota, and a thread-local compare-and-
/// subtract while a reservation lasts.
///
/// Call *before* committing the allocation: the throw must leave no
/// half-carved cell behind. Charges are monotone and shared by every
/// thread working for the request (relaxed fetch_add on refill), so a
/// future worker allocating on the request's behalf draws down the
/// same budget as the socket thread.
inline void charge_allocation(std::uint64_t bytes) {
  obs::RequestContext* rc = obs::current_request().get();
  detail::QuotaReservation& res = detail::g_quota_reservation;
  // Armed fast path first: a reservation hit needs neither the
  // context deref nor any shared state — two thread-local reads.
  if (res.rc == rc && rc != nullptr) {
    if (res.remaining >= bytes) {
      res.remaining -= bytes;
      return;
    }
  } else if (rc == nullptr || rc->mem_quota == 0) {
    return;
  }
  if (rc->mem_quota == 0) return;
  const std::uint64_t chunk =
      bytes > detail::kQuotaChunk ? bytes : detail::kQuotaChunk;
  const std::uint64_t used =
      rc->mem_used.fetch_add(chunk, std::memory_order_relaxed) + chunk;
  if (used > rc->mem_quota) {
    res = detail::QuotaReservation{};  // no credit for a doomed request
    throw ResourceExhausted(
        ResourceExhausted::Kind::kMemQuota,
        "memory quota exceeded: " + std::to_string(used) + " of " +
            std::to_string(rc->mem_quota) + " byte(s) charged");
  }
  res.rc = rc;
  res.remaining = chunk - bytes;
}

/// Charge `steps` eval steps (tree-walker steps or VM instructions) to
/// the current request; throws ResourceExhausted once the fuel budget
/// is spent. Called from eval_tick_step's poll branch, so the cost is
/// paid once per kEvalPollPeriod steps, not per step.
inline void charge_fuel(std::uint64_t steps) {
  obs::RequestContext* rc = obs::current_request().get();
  if (rc == nullptr || rc->fuel_limit == 0) return;
  const std::uint64_t used =
      rc->fuel_used.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (used > rc->fuel_limit) {
    throw ResourceExhausted(
        ResourceExhausted::Kind::kFuel,
        "fuel exhausted: " + std::to_string(used) + " of " +
            std::to_string(rc->fuel_limit) + " eval step(s) used");
  }
}

}  // namespace curare::runtime
