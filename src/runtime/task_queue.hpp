// Ordered task queues for the CRI server pool (paper §4.1).
//
// "If f contains multiple self-recursive calls, then the order of
// invocations can be scrambled by the queue. … This problem can be
// resolved by maintaining an ordered set of queues, one for each call
// site, and by having a server use the next queue only after it
// finishes executing all calls in the current queue."
//
// pop() therefore always drains the lowest-index nonempty queue first.
// Termination uses the paper's kill-token idea: close() wakes every
// server with an empty pop, and they exit.
//
// Three implementations share that contract:
//
//  * SingleMutexTaskQueues — the original centralized queue: one mutex,
//    one condition variable, a deque per site. Kept forever as the A/B
//    baseline for bench_queue and as the single-threaded ordering
//    oracle in tests. Its push recomputes the total depth with an
//    O(sites) scan under the global lock and notifies on every push.
//
//  * ShardedTaskQueues — the first low-contention attempt (PR 2),
//    retired from the alias but kept as a second A/B point. Per call
//    site: a lock-free MPMC ring backed by a mutex-guarded spill deque.
//    One packed atomic word carries the O(1) depth and a cached
//    lowest-nonempty-site hint. It *lost* to the mutex baseline at
//    every measured point (BENCH_scheduler.json history): every push
//    and pop pays CAS loops on the shared packed word plus ring-cursor
//    CASes, ~5–6 contended RMWs per push+pop pair against the mutex
//    queue's single lock handoff.
//
//  * WorkStealingTaskQueues — the scheduler the alias points at. One
//    *lane* per server, each lane holding the full per-site structure
//    (ring + spill). A thread that touches the queue claims a lane; the
//    lane owner pushes with a single-producer ring append (no CAS) and
//    pops from its own lane first, so a task's head→spawn chain stays
//    on the server that spawned it. Only when the owner's lane is dry
//    does it steal — single tasks, oldest-first, two-choice victim
//    selection — and only after several dry rounds does it sleep.
//    There is no global depth word at all: emptiness is read off the
//    ring cursors (publication *is* the count), so the owner's
//    push+pop pair serializes on nothing shared — one ring-cursor CAS
//    on its own lane's consumer side is the only lock-prefixed
//    instruction in the pair.
//
// Ordering semantics (sharded and work-stealing): per-site FIFO holds
// for causally ordered pushes (a server's own successive enqueues —
// the §4.1 invocation-order requirement), and pop prefers the lowest
// nonempty site (within the popper's own lane first, for the
// work-stealing impl). Under concurrent mutation the lowest-site
// preference is best-effort within a race window (two in-flight
// operations may linearize either way), which is indistinguishable
// from scheduling nondeterminism; with a single thread, or at any
// quiescent point with one consumer, the order is exact and equal to
// SingleMutexTaskQueues.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gc/gc.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/mpmc_ring.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

using TaskArgs = std::vector<sexpr::Value>;

/// Counters a queue accumulates between reopen()s; CriRun publishes
/// them to the metrics registry after a run.
struct QueueStats {
  std::uint64_t pushes = 0;       ///< tasks enqueued
  std::uint64_t pops = 0;         ///< tasks dequeued
  std::uint64_t pop_calls = 0;    ///< pop()/pop_some() calls that got ≥1
  std::uint64_t notify_sent = 0;  ///< pushes that signalled a sleeper
  std::uint64_t notify_suppressed = 0;  ///< pushes with no sleeper (no cv)
  std::uint64_t spill_pushes = 0;  ///< pushes that overflowed a ring
  std::uint64_t sleeps = 0;        ///< times a server actually blocked
  std::uint64_t steals = 0;  ///< tasks taken from another server's lane
};

// ---------------------------------------------------------------------------
// SingleMutexTaskQueues: the seed implementation (A/B baseline).
// ---------------------------------------------------------------------------

class SingleMutexTaskQueues {
 public:
  explicit SingleMutexTaskQueues(std::size_t num_sites)
      : queues_(num_sites == 0 ? 1 : num_sites) {}

  /// Enqueue an invocation's arguments at a call site's queue. Returns
  /// the total queued depth after the push (an observability sample —
  /// §4.1's queue-growth discussion made measurable).
  std::size_t push(std::size_t site, TaskArgs args) {
    if (FaultInjector::instance().check(FaultInjector::Site::kQueuePush))
      cv_.notify_all();  // injected spurious wakeup
    std::size_t total = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (site >= queues_.size())
        throw sexpr::LispError("cri: call-site index out of range");
      queues_[site].push_back(std::move(args));
      for (const auto& q : queues_) total += q.size();
      if (total > max_len_) max_len_ = total;
    }
    cv_.notify_one();
    return total;
  }

  /// Block for the next task (lowest-index site first); nullopt when the
  /// queues are closed and empty — the kill token. When `site_out` is
  /// non-null it receives the call-site index the task came from.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::unique_lock<std::mutex> g(mu_);
    for (;;) {
      for (std::size_t i = 0; i < queues_.size(); ++i) {
        auto& q = queues_[i];
        if (!q.empty()) {
          TaskArgs t = std::move(q.front());
          q.pop_front();
          if (site_out) *site_out = i;
          return t;
        }
      }
      if (closed_) return std::nullopt;
      // Park hook: a server sleeping here is at a quiescent point — the
      // values it will consume on wake are still queue-rooted — so it
      // must not hold its unsafe region and stall the collector.
      // Bounded slice: close()/push() still wake us immediately; the
      // timeout only bounds how long a cancelled server can stay parked
      // before its serve loop re-checks the token.
      const std::size_t gcd = gc_ ? gc_->blocking_release() : 0;
      cv_.wait_for(g, std::chrono::milliseconds(100));
      if (gcd != 0) {
        // Re-enter outside the queue lock: reacquire may block on a
        // stop-the-world whose root enumeration needs this mutex.
        g.unlock();
        gc_->blocking_reacquire(gcd);
        g.lock();
      }
    }
  }

  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reset to the open, empty state. Callers must be quiescent.
  void reopen() {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& q : queues_) q.clear();
    closed_ = false;
    max_len_ = 0;
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

  /// High-water mark of total queued tasks (§4.1: with a single call
  /// site the queue never grows beyond its initial length).
  std::size_t max_length() const {
    std::lock_guard<std::mutex> g(mu_);
    return max_len_;
  }

  std::size_t sites() const { return queues_.size(); }

  /// Let blocked pops release their GC unsafe region while sleeping.
  void attach_gc(gc::GcHeap* gc) { gc_ = gc; }

  /// Visit every pending task's argument vector. The collector calls
  /// this while the world is stopped; sleeping servers hold no queue
  /// state, so the mutex is uncontended-or-briefly-held.
  template <typename Fn>
  void for_each_task(Fn&& fn) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& q : queues_)
      for (const TaskArgs& t : q) fn(t);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<TaskArgs>> queues_;
  bool closed_ = false;
  std::size_t max_len_ = 0;
  gc::GcHeap* gc_ = nullptr;
};

// ---------------------------------------------------------------------------
// ShardedTaskQueues: the low-contention scheduler.
// ---------------------------------------------------------------------------

class ShardedTaskQueues {
 public:
  explicit ShardedTaskQueues(std::size_t num_sites,
                             std::size_t ring_capacity = kDefaultRing) {
    const std::size_t n = num_sites == 0 ? 1 : num_sites;
    sites_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      sites_.push_back(std::make_unique<Site>(ring_capacity));
  }

  ShardedTaskQueues(const ShardedTaskQueues&) = delete;
  ShardedTaskQueues& operator=(const ShardedTaskQueues&) = delete;

  /// Enqueue at a call site. Returns the total queued depth after the
  /// push (O(1): one atomic word, no scan — the seed queue recomputed
  /// this with an O(sites) walk under the global lock on every push).
  std::size_t push(std::size_t site, TaskArgs args) {
    if (FaultInjector::instance().check(
            FaultInjector::Site::kQueuePush)) {
      // Injected spurious wakeup for any sleeping server.
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_all();
    }
    if (site >= sites_.size())
      throw sexpr::LispError("cri: call-site index out of range");
    Site& s = *sites_[site];
    // Fast path: lock-free ring append. Legal only while the site has
    // no spilled items — ring items must stay older than spill items so
    // the per-site FIFO survives an overflow episode.
    if (s.spill_count.load(std::memory_order_acquire) != 0 ||
        !s.ring.try_push(std::move(args))) {
      std::lock_guard<std::mutex> g(s.mu);
      if (!(s.spill.empty() && s.ring.try_push(std::move(args)))) {
        s.spill.push_back(std::move(args));
        s.spill_count.store(s.spill.size(), std::memory_order_release);
        spill_pushes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The only hot-path stats RMW; the other push-side counters are
    // derived in stats() (suppressed notifies = pushes − sent).
    pushes_.fetch_add(1, std::memory_order_relaxed);

    // One CAS both bumps the O(1) depth and lowers the scan hint. The
    // seq_cst RMW also forms the store side of the sleeper handshake.
    std::uint64_t w = state_.load(std::memory_order_relaxed);
    std::uint64_t nw;
    do {
      nw = pack(std::min(hint_of(w), site), depth_of(w) + 1);
    } while (!state_.compare_exchange_weak(w, nw, std::memory_order_seq_cst,
                                           std::memory_order_relaxed));
    const std::size_t total =
        depth_positive(nw) ? static_cast<std::size_t>(depth_of(nw)) : 1;

    std::size_t m = max_len_.load(std::memory_order_relaxed);
    while (total > m && !max_len_.compare_exchange_weak(
                            m, total, std::memory_order_relaxed)) {
    }

    // Throttled wakeup: only pay the condition variable (and its futex
    // syscall) when a server is actually asleep.
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      notify_sent_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_one();
    }
    return total;
  }

  /// Block for the next task (lowest-index site first); nullopt when
  /// the queues are closed and empty — the kill token.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::optional<TaskArgs> out;
    pop_loop(1, site_out,
             [&out](TaskArgs&& t) { out.emplace(std::move(t)); });
    return out;
  }

  /// Batched pop: up to `max` tasks, all from the same (lowest nonempty)
  /// site, appended to `out` in FIFO order. Returns the count; 0 is the
  /// kill token. One site-selection + one depth CAS amortized over the
  /// whole batch.
  std::size_t pop_some(std::vector<TaskArgs>& out, std::size_t max,
                       std::size_t* site_out = nullptr) {
    return pop_loop(max == 0 ? 1 : max, site_out,
                    [&out](TaskArgs&& t) { out.push_back(std::move(t)); });
  }

  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> g(wait_mu_);
    wait_cv_.notify_all();
  }

  /// Reset to the open, empty state, dropping any leftover tasks and
  /// zeroing the per-run stats. Callers must be quiescent (no
  /// concurrent push/pop) — CriRun::run calls this before starting its
  /// servers so an aborted run can be retried on the same object.
  void reopen() {
    for (auto& sp : sites_) {
      std::lock_guard<std::mutex> g(sp->mu);
      sp->spill.clear();
      sp->spill_count.store(0, std::memory_order_relaxed);
      TaskArgs t;
      while (sp->ring.try_pop(t)) {
      }
    }
    state_.store(0, std::memory_order_seq_cst);
    max_len_.store(0, std::memory_order_relaxed);
    pushes_.store(0, std::memory_order_relaxed);
    batch_extras_.store(0, std::memory_order_relaxed);
    notify_sent_.store(0, std::memory_order_relaxed);
    spill_pushes_.store(0, std::memory_order_relaxed);
    sleeps_.store(0, std::memory_order_relaxed);
    closed_.store(false, std::memory_order_seq_cst);
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

  /// Total queued tasks right now (O(1); exact when quiescent).
  std::size_t depth() const {
    const std::uint64_t w = state_.load(std::memory_order_seq_cst);
    return depth_positive(w) ? static_cast<std::size_t>(depth_of(w)) : 0;
  }

  /// High-water mark of total queued tasks (§4.1: with a single call
  /// site the queue never grows beyond its initial length).
  std::size_t max_length() const {
    return max_len_.load(std::memory_order_relaxed);
  }

  std::size_t sites() const { return sites_.size(); }

  /// Exact at any quiescent point (e.g. after the servers joined); the
  /// derived fields can lag by in-flight operations mid-run. Keeping
  /// the derivable counters out of the hot path halves its RMW count.
  QueueStats stats() const {
    QueueStats st;
    st.pushes = pushes_.load(std::memory_order_relaxed);
    st.pops = st.pushes - std::min<std::uint64_t>(st.pushes, depth());
    st.pop_calls =
        st.pops - batch_extras_.load(std::memory_order_relaxed);
    st.notify_sent = notify_sent_.load(std::memory_order_relaxed);
    st.notify_suppressed = st.pushes - st.notify_sent;
    st.spill_pushes = spill_pushes_.load(std::memory_order_relaxed);
    st.sleeps = sleeps_.load(std::memory_order_relaxed);
    return st;
  }

  /// Let blocked pops release their GC unsafe region while sleeping.
  void attach_gc(gc::GcHeap* gc) { gc_ = gc; }

  /// Visit every pending task's argument vector (ring then spill per
  /// site, oldest first). Collector-only, world stopped: concurrent
  /// pushers/poppers are parked, so the rings are quiescent.
  template <typename Fn>
  void for_each_task(Fn&& fn) const {
    for (const auto& sp : sites_) {
      sp->ring.for_each(fn);
      std::lock_guard<std::mutex> g(sp->mu);
      for (const TaskArgs& t : sp->spill) fn(t);
    }
  }

 private:
  static constexpr std::size_t kDefaultRing = 512;

  // One packed word: high 16 bits = cached lowest-nonempty-site hint,
  // low 48 bits = total depth (mod 2^48 — a pop racing ahead of its
  // push's depth CAS makes the field wrap transiently; depth_positive
  // filters that window out). Folding both into the single RMW every
  // push/pop already pays makes the hint raise safe: a pop may raise
  // the hint to the site it served only if the word — and therefore
  // the world — did not change since before its emptiness scan.
  static constexpr std::uint64_t kDepthBits = 48;
  static constexpr std::uint64_t kDepthMask = (1ull << kDepthBits) - 1;

  static std::uint64_t pack(std::size_t hint, std::uint64_t depth) {
    return (static_cast<std::uint64_t>(hint) << kDepthBits) |
           (depth & kDepthMask);
  }
  static std::uint64_t depth_of(std::uint64_t w) { return w & kDepthMask; }
  static std::size_t hint_of(std::uint64_t w) {
    return static_cast<std::size_t>(w >> kDepthBits);
  }
  static bool depth_positive(std::uint64_t w) {
    const std::uint64_t d = w & kDepthMask;
    return d != 0 && d < (1ull << (kDepthBits - 1));
  }

  struct Site {
    explicit Site(std::size_t ring_capacity) : ring(ring_capacity) {}
    MpmcRing<TaskArgs> ring;
    std::atomic<std::size_t> spill_count{0};
    std::mutex mu;  ///< guards spill (and ring refills from it)
    std::deque<TaskArgs> spill;
  };

  /// Take up to `max` tasks from one site, oldest first: drain the ring
  /// (older), then the spill, then refill the ring from the spill so
  /// later pops take the lock-free path again.
  template <typename Sink>
  std::size_t take_from_site(Site& s, std::size_t max, Sink&& sink) {
    std::size_t n = 0;
    TaskArgs t;
    while (n < max && s.ring.try_pop(t)) {
      sink(std::move(t));
      ++n;
    }
    if (n < max && s.spill_count.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> g(s.mu);
      while (n < max && s.ring.try_pop(t)) {
        sink(std::move(t));
        ++n;
      }
      while (n < max && !s.spill.empty()) {
        sink(std::move(s.spill.front()));
        s.spill.pop_front();
        ++n;
      }
      while (!s.spill.empty() &&
             s.ring.try_push(std::move(s.spill.front()))) {
        s.spill.pop_front();
      }
      s.spill_count.store(s.spill.size(), std::memory_order_release);
    }
    return n;
  }

  template <typename Sink>
  std::size_t pop_loop(std::size_t max, std::size_t* site_out,
                       Sink&& sink) {
    const std::size_t nsites = sites_.size();
    for (;;) {
      const std::uint64_t w0 = state_.load(std::memory_order_seq_cst);
      if (depth_positive(w0)) {
        const std::size_t start =
            std::min<std::size_t>(hint_of(w0), nsites - 1);
        for (std::size_t k = 0; k < nsites; ++k) {
          // Preferred region first ([hint..n)); wrap to [0..hint) so a
          // stale hint can delay a low site but never strand it.
          const std::size_t i = (start + k) % nsites;
          const std::size_t taken = take_from_site(*sites_[i], max, sink);
          if (taken == 0) continue;
          // No stats RMW on the unbatched path: pops are derived from
          // pushes − depth, pop_calls from pops − batch extras.
          if (taken > 1)
            batch_extras_.fetch_add(taken - 1, std::memory_order_relaxed);
          if (site_out) *site_out = i;
          // Decrement the depth, and maybe raise the hint. Two guards
          // close the staleness window a raise can open:
          //  (a) the whole-word CAS: a raise lands only if no *counted*
          //      push/pop raced the word since before our scan; and
          //  (b) the raise goes to i only when this scan physically
          //      observed every site below i empty — start == 0, or the
          //      scan wrapped past 0 (i < start). A scan that started
          //      mid-array and served within its preferred region
          //      never looked at [0, start), where an as-yet-uncounted
          //      spill push (payload inserted, depth CAS still in
          //      flight) can already sit; (a) cannot see that push, so
          //      raising over it would delay it until the pusher's own
          //      CAS re-lowers the hint. Keeping the old hint instead
          //      costs nothing.
          // What remains is a push landing *between* this scan's visit
          // to its site and the CAS below; the pusher's depth CAS
          // re-lowers the hint right after, and the wrap-around scan
          // above means a stale hint can only delay a task, never
          // strand it (no further push required).
          const std::size_t raised = (start == 0 || i < start) ? i : start;
          std::uint64_t expect = w0;
          if (!state_.compare_exchange_strong(
                  expect, pack(raised, depth_of(w0) - taken),
                  std::memory_order_seq_cst, std::memory_order_relaxed)) {
            std::uint64_t w = expect;
            while (!state_.compare_exchange_weak(
                w, pack(hint_of(w), depth_of(w) - taken),
                std::memory_order_seq_cst, std::memory_order_relaxed)) {
            }
          }
          return taken;
        }
        // Depth said nonempty but the scan missed: a push has bumped
        // the counter while its payload is still being published (or a
        // racing pop drained it). Brief, pusher-bounded window.
        std::this_thread::yield();
        continue;
      }
      if (closed_.load(std::memory_order_seq_cst)) return 0;
      // Sleep protocol: register, then re-check depth/closed. A push
      // bumps depth (seq_cst) before reading the sleeper count, so
      // either it sees us registered and notifies under wait_mu_, or we
      // see its depth and skip the wait — no lost wakeup either way.
      std::unique_lock<std::mutex> lk(wait_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (!depth_positive(state_.load(std::memory_order_seq_cst)) &&
          !closed_.load(std::memory_order_seq_cst)) {
        sleeps_.fetch_add(1, std::memory_order_relaxed);
        // Park hook: a sleeping server is at a quiescent point (the
        // values it will consume on wake are still queue-rooted), so
        // it releases its GC unsafe region for the duration.
        // Bounded slice: push()/close() still wake us immediately; the
        // timeout only bounds how long a cancelled server stays parked
        // before its serve loop re-checks the token.
        const std::size_t gcd = gc_ ? gc_->blocking_release() : 0;
        wait_cv_.wait_for(lk, std::chrono::milliseconds(100));
        if (gcd != 0) {
          // Re-enter outside wait_mu_: reacquire may block on a
          // stop-the-world, and nobody should hold queue locks then.
          lk.unlock();
          gc_->blocking_reacquire(gcd);
          lk.lock();
        }
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  std::vector<std::unique_ptr<Site>> sites_;
  alignas(64) std::atomic<std::uint64_t> state_{0};  ///< hint | depth
  alignas(64) std::atomic<std::size_t> max_len_{0};
  std::atomic<bool> closed_{false};

  // Sleeper handshake (cold path only).
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<int> sleepers_{0};

  // Stats (relaxed; snapshot via stats()). Only pushes_ is touched on
  // the fast path; the rest live on slow/cold paths or are derived.
  std::atomic<std::uint64_t> pushes_{0}, batch_extras_{0},
      notify_sent_{0}, spill_pushes_{0}, sleeps_{0};

  gc::GcHeap* gc_ = nullptr;
};

// ---------------------------------------------------------------------------
// WorkStealingTaskQueues: per-server lanes with work stealing.
// ---------------------------------------------------------------------------
//
// Why the per-site sharding lost (BENCH_scheduler.json history, PR 2→7):
// every ShardedTaskQueues push+pop pair funnels through CAS loops on
// one shared packed depth/hint word plus MPMC ring-cursor CASes —
// ~5–6 contended RMWs per pair versus the mutex queue's single lock
// handoff, and no locality: a server's spawned task lands in a global
// per-site ring any server drains. This impl inverts the split: shard
// by *server*, not by site.
//
// One lane per expected worker, each lane carrying the full per-site
// array of {ring, spill}. A thread claims a lane the first time it
// touches the queue; the claim grants exclusive *producer* rights, so
// the owner pushes with single-producer ring appends (no CAS) and pops
// its own lane first — a head→spawn chain stays on the server that
// spawned it. Consumption stays MPMC: a dry owner steals single tasks,
// oldest first, from the lowest nonempty site of a victim lane
// (randomized two-choice selection by estimated load, then a
// deterministic sweep so provably-present work is never missed), and
// only after several dry rounds does it sleep.
//
// Ownership/steal protocol and memory orders:
//  * Payload publication: Vyukov cell-sequence release/acquire in the
//    rings; the spill deques under their per-site mutex. There is no
//    separate depth word — a task is "in the queue" exactly when its
//    cell sequence (or spill slot) says so, so emptiness probes and
//    the kill-token check sweep the cursors instead of trusting a
//    counter that could run ahead of the payload.
//  * Depth accounting: four monotonic per-lane counters
//    (pushed_own/pushed_foreign/popped_own/popped_stolen). The two
//    owner-side ones are single-writer — plain load+store, no lock
//    prefix; the foreign/stolen ones are RMWs on cold paths only.
//    depth() and stats() are sums, exact at quiescence.
//  * Sleeper handshake (Dekker): a pusher that may need to wake a
//    server publishes the payload, then issues a seq_cst fence, then
//    reads sleepers_; a sleeper registers in sleepers_ (seq_cst RMW,
//    under wait_mu_) and then re-sweeps every ring/spill before
//    waiting. Either the pusher sees the registration and notifies
//    (at most one) under the mutex, or the sleeper's sweep sees the
//    published payload and skips the wait.
//  * Wake throttle: an owner that also consumes its lane skips the
//    fence/notify entirely when its lane depth after the push is 1 —
//    the producer is the next consumer, so there is nothing for a
//    thief to do (the classic work-stealing wake rule). Surplus
//    pushes (lane depth > 1), producer-only owners (a seeding caller
//    or dispatcher that never pops), and foreign spills always go
//    through the handshake. The bounded 100 ms sleep slice is the
//    liveness backstop if a consuming owner stalls mid-chain.
//  * Lane claims: one CAS per thread per generation, never on the hot
//    path (a thread-local cache keyed by queue id + reopen generation
//    remembers the registration).

class WorkStealingTaskQueues {
 public:
  static constexpr std::size_t kDefaultRing = 512;

  /// `workers` sizes the lane array: the number of threads expected to
  /// touch the queue (CriRun passes servers + 1 so the caller seeding
  /// the initial task keeps its own lane and every server still claims
  /// one). Extra threads beyond `workers` stay correct — they share a
  /// home lane for popping and push through the spill path.
  explicit WorkStealingTaskQueues(std::size_t num_sites,
                                  std::size_t workers = 1,
                                  std::size_t ring_capacity = kDefaultRing)
      : nsites_(num_sites == 0 ? 1 : num_sites), id_(next_queue_id()) {
    const std::size_t nlanes = workers == 0 ? 1 : workers;
    lanes_.reserve(nlanes);
    for (std::size_t i = 0; i < nlanes; ++i)
      lanes_.push_back(std::make_unique<Lane>(nsites_, ring_capacity));
  }

  WorkStealingTaskQueues(const WorkStealingTaskQueues&) = delete;
  WorkStealingTaskQueues& operator=(const WorkStealingTaskQueues&) = delete;

  /// Enqueue at a call site. Returns the pusher's lane depth after the
  /// push (the affinity-local observability sample — the depth a
  /// server's own backlog has grown to). Owner fast path: one SP ring
  /// append (no CAS, no fence) plus plain single-writer counters —
  /// when the owner also consumes its lane and this task is its only
  /// backlog, the push executes zero lock-prefixed instructions.
  std::size_t push(std::size_t site, TaskArgs args) {
    if (FaultInjector::instance().check(
            FaultInjector::Site::kQueuePush)) {
      // Injected spurious wakeup for any sleeping server.
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_all();
    }
    if (site >= nsites_)
      throw sexpr::LispError("cri: call-site index out of range");
    const TlsEntry me = self();
    Lane& lane = *lanes_[me.lane];
    bool consuming_owner = false;
    if (me.owner) {
      LaneSite& s = *lane.sites[site];
      // SP append unless the site has spilled items — ring items must
      // stay older than spill items so per-site FIFO survives an
      // overflow episode.
      if (s.spill_count.load(std::memory_order_acquire) != 0 ||
          !s.ring.try_push_sp(std::move(args))) {
        std::lock_guard<std::mutex> g(s.mu);
        if (!(s.spill.empty() && s.ring.try_push_sp(std::move(args)))) {
          s.spill.push_back(std::move(args));
          s.spill_count.store(s.spill.size(), std::memory_order_release);
          spill_pushes_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Single-writer counter: plain load+store, no lock prefix.
      lane.pushed_own.store(
          lane.pushed_own.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      consuming_owner = lane.owner_consumes.load(std::memory_order_relaxed);
    } else {
      // Foreign producer (a thread beyond the lane count, or one that
      // never claimed — e.g. a run's caller when lanes are exhausted):
      // spill into its home lane under the site mutex. Cold by design.
      LaneSite& s = *lane.sites[site];
      {
        std::lock_guard<std::mutex> g(s.mu);
        s.spill.push_back(std::move(args));
        s.spill_count.store(s.spill.size(), std::memory_order_release);
      }
      spill_pushes_.fetch_add(1, std::memory_order_relaxed);
      lane.pushed_foreign.fetch_add(1, std::memory_order_relaxed);
    }

    // Lane depth after the push, from the monotonic counters. Stale
    // reads of the cold-side counters can only misjudge the *surplus*
    // test below in the safe direction: a lagging popped_stolen makes
    // the depth look larger (spurious notify); a lagging
    // pushed_foreign hides an item whose own pusher carries its
    // notify obligation.
    const std::int64_t d = lane_depth(lane);
    const std::size_t total = d > 0 ? static_cast<std::size_t>(d) : 1;
    std::size_t m = lane.max_depth.load(std::memory_order_relaxed);
    if (total > m)
      lane.max_depth.store(total, std::memory_order_relaxed);

    // Wake throttle: when the pusher is a consuming owner and this
    // task is its lane's only backlog, the producer is the next
    // consumer — skip the handshake entirely (no fence, no sleeper
    // check). Any surplus task, and any push by a producer that never
    // pops, must offer itself to a thief: publish-then-fence, then
    // read the sleeper count (Dekker with the sleeper's registration
    // RMW + re-sweep), waking at most one.
    if (!consuming_owner || d > 1) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (sleepers_.load(std::memory_order_relaxed) > 0) {
        notify_sent_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> g(wait_mu_);
        wait_cv_.notify_one();
      }
    }
    return total;
  }

  /// Block for the next task (own lane's lowest site first, then
  /// steal); nullopt when the queues are closed and empty — the kill
  /// token.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::optional<TaskArgs> out;
    pop_loop(1, site_out,
             [&out](TaskArgs&& t) { out.emplace(std::move(t)); });
    return out;
  }

  /// Batched pop: up to `max` tasks, all from the same site of the
  /// popper's own lane, in FIFO order (steals are always single tasks).
  /// Returns the count; 0 is the kill token.
  std::size_t pop_some(std::vector<TaskArgs>& out, std::size_t max,
                       std::size_t* site_out = nullptr) {
    return pop_loop(max == 0 ? 1 : max, site_out,
                    [&out](TaskArgs&& t) { out.push_back(std::move(t)); });
  }

  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> g(wait_mu_);
    wait_cv_.notify_all();
  }

  /// Reset to the open, empty state, dropping leftover tasks, zeroing
  /// the per-run stats, and revoking every lane claim (the next run's
  /// server threads are new). Callers must be quiescent.
  void reopen() {
    for (auto& lp : lanes_) {
      lp->claimed.store(false, std::memory_order_relaxed);
      lp->owner_consumes.store(false, std::memory_order_relaxed);
      lp->pushed_own.store(0, std::memory_order_relaxed);
      lp->pushed_foreign.store(0, std::memory_order_relaxed);
      lp->popped_own.store(0, std::memory_order_relaxed);
      lp->popped_stolen.store(0, std::memory_order_relaxed);
      lp->max_depth.store(0, std::memory_order_relaxed);
      for (auto& sp : lp->sites) {
        std::lock_guard<std::mutex> g(sp->mu);
        sp->spill.clear();
        sp->spill_count.store(0, std::memory_order_relaxed);
        TaskArgs t;
        while (sp->ring.try_pop(t)) {
        }
      }
    }
    batch_extras_.store(0, std::memory_order_relaxed);
    notify_sent_.store(0, std::memory_order_relaxed);
    spill_pushes_.store(0, std::memory_order_relaxed);
    sleeps_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    next_lane_.store(0, std::memory_order_relaxed);
    // Invalidate every thread's cached registration.
    gen_.fetch_add(1, std::memory_order_release);
    closed_.store(false, std::memory_order_seq_cst);
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

  /// Total queued tasks right now (sum of the per-lane monotonic
  /// counters; exact when quiescent). A racy snapshot can transiently
  /// dip below zero (a take observed before its push); clamp.
  std::size_t depth() const {
    std::int64_t d = 0;
    for (const auto& lp : lanes_) d += lane_depth(*lp);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

  /// High-water mark of a single lane's backlog (§4.1: with a single
  /// call site the queue never grows beyond its initial length). With
  /// one producer thread this equals the old total-depth high-water;
  /// under concurrent mixed producers it is a per-server measure —
  /// the backlog any one server accumulated — and approximate.
  std::size_t max_length() const {
    std::size_t m = 0;
    for (const auto& lp : lanes_)
      m = std::max(m, lp->max_depth.load(std::memory_order_relaxed));
    return m;
  }

  std::size_t sites() const { return nsites_; }

  /// Exact at any quiescent point; derived fields can lag by in-flight
  /// operations mid-run (same discipline as ShardedTaskQueues).
  QueueStats stats() const {
    QueueStats st;
    for (const auto& lp : lanes_) {
      st.pushes += lp->pushed_own.load(std::memory_order_relaxed) +
                   lp->pushed_foreign.load(std::memory_order_relaxed);
      st.pops += lp->popped_own.load(std::memory_order_relaxed) +
                 lp->popped_stolen.load(std::memory_order_relaxed);
    }
    st.pop_calls =
        st.pops - std::min<std::uint64_t>(
                      st.pops, batch_extras_.load(std::memory_order_relaxed));
    st.notify_sent = notify_sent_.load(std::memory_order_relaxed);
    st.notify_suppressed =
        st.pushes - std::min<std::uint64_t>(st.pushes, st.notify_sent);
    st.spill_pushes = spill_pushes_.load(std::memory_order_relaxed);
    st.sleeps = sleeps_.load(std::memory_order_relaxed);
    st.steals = steals_.load(std::memory_order_relaxed);
    return st;
  }

  /// Let blocked pops release their GC unsafe region while sleeping.
  void attach_gc(gc::GcHeap* gc) { gc_ = gc; }

  /// Visit every pending task's argument vector (per lane, per site:
  /// ring then spill, oldest first). Collector-only, world stopped.
  template <typename Fn>
  void for_each_task(Fn&& fn) const {
    for (const auto& lp : lanes_) {
      for (const auto& sp : lp->sites) {
        sp->ring.for_each(fn);
        std::lock_guard<std::mutex> g(sp->mu);
        for (const TaskArgs& t : sp->spill) fn(t);
      }
    }
  }

 private:
  static constexpr std::size_t kDryRoundsBeforeSleep = 4;

  struct LaneSite {
    explicit LaneSite(std::size_t ring_capacity) : ring(ring_capacity) {}
    MpmcRing<TaskArgs> ring;
    std::atomic<std::size_t> spill_count{0};
    std::mutex mu;  ///< guards spill
    std::deque<TaskArgs> spill;
  };

  struct alignas(64) Lane {
    Lane(std::size_t nsites, std::size_t ring_capacity) {
      sites.reserve(nsites);
      for (std::size_t i = 0; i < nsites; ++i)
        sites.push_back(std::make_unique<LaneSite>(ring_capacity));
    }
    std::vector<std::unique_ptr<LaneSite>> sites;
    /// Producer claim: the claiming thread alone may SP-push here.
    std::atomic<bool> claimed{false};
    /// Set by the owner the first time it pops — distinguishes a
    /// server (producer-is-next-consumer, wake throttle applies) from
    /// a producer-only claimant like a seeding caller or dispatcher
    /// (whose pushes always run the sleeper handshake). Written and
    /// read by the owner thread only.
    std::atomic<bool> owner_consumes{false};
    /// Monotonic depth counters, padded off the sites vector so
    /// stats() reads don't bounce the owner's hot line. pushed_own
    /// and popped_own are single-writer (the owner) — plain
    /// load+store; the other two are RMWs on cold paths (foreign
    /// spill pushes; takes by non-owners).
    alignas(64) std::atomic<std::uint64_t> pushed_own{0};
    std::atomic<std::uint64_t> popped_own{0};
    std::atomic<std::size_t> max_depth{0};
    alignas(64) std::atomic<std::uint64_t> pushed_foreign{0};
    std::atomic<std::uint64_t> popped_stolen{0};
  };

  /// Racy lane backlog from the monotonic counters (exact when
  /// quiescent; clamped by callers where a transient negative racy
  /// snapshot matters).
  static std::int64_t lane_depth(const Lane& lane) {
    return static_cast<std::int64_t>(
               lane.pushed_own.load(std::memory_order_relaxed) +
               lane.pushed_foreign.load(std::memory_order_relaxed)) -
           static_cast<std::int64_t>(
               lane.popped_own.load(std::memory_order_relaxed) +
               lane.popped_stolen.load(std::memory_order_relaxed));
  }

  struct TlsEntry {
    std::uint64_t qid = 0;
    std::uint64_t gen = 0;
    std::uint32_t lane = 0;
    bool owner = false;
  };
  struct TlsCache {
    TlsEntry e[4];
    unsigned next = 0;
  };
  static TlsCache& tls() {
    thread_local TlsCache c;
    return c;
  }
  static std::uint64_t next_queue_id() {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// This thread's registration with this queue (cached per thread,
  /// keyed by queue id + reopen generation). First touch rotates to a
  /// home lane and tries to claim exclusive producer rights on it —
  /// one CAS per thread per generation, never repeated on the hot
  /// path.
  TlsEntry self() {
    TlsCache& c = tls();
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    for (const TlsEntry& e : c.e)
      if (e.qid == id_ && e.gen == gen) return e;
    const std::size_t nlanes = lanes_.size();
    std::size_t lane =
        next_lane_.fetch_add(1, std::memory_order_relaxed) % nlanes;
    bool owner = false;
    for (std::size_t k = 0; k < nlanes; ++k) {
      const std::size_t cand = (lane + k) % nlanes;
      bool expected = false;
      if (lanes_[cand]->claimed.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        lane = cand;
        owner = true;
        break;
      }
    }
    TlsEntry& e = c.e[c.next++ % (sizeof(c.e) / sizeof(c.e[0]))];
    e = TlsEntry{id_, gen, static_cast<std::uint32_t>(lane), owner};
    return e;
  }

  /// Take up to `max` tasks from one site, oldest first: the ring
  /// (older — owner pushes gate to the spill while it is nonempty),
  /// then the spill. Unlike the sharded impl there is no ring refill
  /// from the spill: the ring's producer side belongs to the lane
  /// owner alone.
  template <typename Sink>
  std::size_t take_from_site(LaneSite& s, std::size_t max, Sink&& sink) {
    std::size_t n = 0;
    TaskArgs t;
    while (n < max && s.ring.try_pop(t)) {
      sink(std::move(t));
      ++n;
    }
    if (n < max && s.spill_count.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> g(s.mu);
      while (n < max && s.ring.try_pop(t)) {
        sink(std::move(t));
        ++n;
      }
      while (n < max && !s.spill.empty()) {
        sink(std::move(s.spill.front()));
        s.spill.pop_front();
        ++n;
      }
      s.spill_count.store(s.spill.size(), std::memory_order_release);
    }
    return n;
  }

  /// Lowest nonempty site of one lane; a batch never spans sites.
  template <typename Sink>
  std::size_t take_from_lane(Lane& lane, std::size_t max,
                             std::size_t* site_out, Sink&& sink) {
    for (std::size_t i = 0; i < lane.sites.size(); ++i) {
      const std::size_t n = take_from_site(*lane.sites[i], max, sink);
      if (n != 0) {
        if (site_out) *site_out = i;
        return n;
      }
    }
    return 0;
  }

  /// Racy per-lane load estimate for victim selection (four relaxed
  /// loads — no ring-cursor traffic).
  static std::size_t lane_load(const Lane& lane) {
    const std::int64_t d = lane_depth(lane);
    return d > 0 ? static_cast<std::size_t>(d) : 0;
  }

  /// One lane's cursor-level emptiness probe.
  static bool lane_nonempty(const Lane& lane) {
    for (const auto& sp : lane.sites) {
      if (!sp->ring.probably_empty() ||
          sp->spill_count.load(std::memory_order_acquire) != 0)
        return true;
    }
    return false;
  }

  /// Steal-affinity rule: a spin-phase thief may rob a victim only
  /// when the work is *surplus* — the victim's owner has more backlog
  /// than it can consume next (load ≥ 2), or the lane is a mailbox (a
  /// producer-only owner that never pops: a seeding caller, a serve
  /// dispatcher). A consuming owner's single in-flight task is left
  /// alone even while that owner is descheduled; robbing it would just
  /// migrate the chain and strand the owner (the churn that time-
  /// sliced hosts otherwise exhibit). Desperate rounds — the first
  /// round after any sleep, and everything after close() — ignore the
  /// rule, which bounds a stalled owner's parked task by the sleep
  /// slice.
  bool steal_ok(const Lane& lane, bool desperate) const {
    return desperate || closed_.load(std::memory_order_relaxed) ||
           !lane.owner_consumes.load(std::memory_order_relaxed) ||
           lane_load(lane) >= 2;
  }

  /// Pre-sleep check, mirroring exactly what a non-desperate round can
  /// take: something in the caller's own lane, anything once closed,
  /// or stealable (surplus/mailbox) work elsewhere. Sleeping is wrong
  /// while any of those exist; a throttled depth-1 chain task parked
  /// elsewhere is *not* a reason to stay awake — its owner, or our
  /// next timeout's desperate round, will take it.
  bool takeable_now(std::size_t home) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const Lane& lane = *lanes_[i];
      if (!lane_nonempty(lane)) continue;
      if (i == home || steal_ok(lane, /*desperate=*/false)) return true;
    }
    return closed_.load(std::memory_order_seq_cst);
  }

  /// One acquire-probe pass over every lane × site: true iff some ring
  /// cell is published or some spill is nonempty. This is the
  /// authoritative emptiness check — publication is the count — used
  /// by the sleeper re-check and the kill-token verification sweep.
  bool sweep_nonempty() const {
    for (const auto& lp : lanes_) {
      for (const auto& sp : lp->sites) {
        if (!sp->ring.probably_empty() ||
            sp->spill_count.load(std::memory_order_acquire) != 0)
          return true;
      }
    }
    return false;
  }

  static std::uint64_t tls_rng() {
    thread_local std::uint64_t x =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }

  /// Randomized two-choice victim selection: draw two lanes other than
  /// `home`, probe the one with the larger estimated load.
  std::size_t pick_victim(std::size_t home) const {
    const std::size_t nlanes = lanes_.size();  // caller ensures > 1
    const std::uint64_t r = tls_rng();
    std::size_t a = static_cast<std::size_t>(r % (nlanes - 1));
    if (a >= home) ++a;
    std::size_t b = static_cast<std::size_t>((r >> 32) % (nlanes - 1));
    if (b >= home) ++b;
    return lane_load(*lanes_[a]) >= lane_load(*lanes_[b]) ? a : b;
  }

  template <typename Sink>
  std::size_t pop_loop(std::size_t max, std::size_t* site_out,
                       Sink&& sink) {
    const TlsEntry me = self();
    const std::size_t home = me.lane;
    const std::size_t nlanes = lanes_.size();
    Lane& own = *lanes_[home];
    if (me.owner && !own.owner_consumes.load(std::memory_order_relaxed))
      own.owner_consumes.store(true, std::memory_order_relaxed);
    std::size_t dry_rounds = 0;
    bool desperate = false;
    // Exponential sleep slice: the first park is short so a desperate
    // steal rescues a task stranded on a stalled owner's lane within
    // ~1 ms (a single chain with a long tail migrates almost
    // immediately), then doubles toward the 100 ms cap while this
    // sleeper keeps waking to nothing — steal-back churn on a hot
    // owner decays instead of recurring every slice.
    auto slice = std::chrono::milliseconds(1);
    constexpr auto kMaxSlice = std::chrono::milliseconds(100);
    for (;;) {
      // Own lane first, lowest site first.
      std::size_t n = take_from_lane(own, max, site_out, sink);
      if (n != 0) {
        // Owner takes are the single-writer counter; shared-lane
        // takes by a non-owner count as stolen (the RMW is off the
        // fast path by construction — a non-owner home popper only
        // exists when threads outnumber lanes).
        if (me.owner) {
          own.popped_own.store(
              own.popped_own.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
        } else {
          own.popped_stolen.fetch_add(n, std::memory_order_relaxed);
        }
        if (n > 1)
          batch_extras_.fetch_add(n - 1, std::memory_order_relaxed);
        return n;
      }
      if (nlanes > 1) {
        // Steal round. The fault site fires here — before any victim
        // is probed — so chaos runs can delay or abort exactly the
        // cross-lane path; it never fires on the owner fast path (a
        // single-lane queue never steals).
        if (FaultInjector::instance().check(
                FaultInjector::Site::kQueueSteal)) {
          std::lock_guard<std::mutex> g(wait_mu_);
          wait_cv_.notify_all();  // injected spurious wakeup
        }
        // Two-choice probe, then a deterministic sweep so work that
        // provably exists is never missed (drain-after-close and the
        // kill-token check both rely on scan completeness). Both
        // passes honor the steal-affinity rule.
        std::size_t victim = pick_victim(home);
        if (steal_ok(*lanes_[victim], desperate))
          n = take_from_lane(*lanes_[victim], 1, site_out, sink);
        for (std::size_t k = 1; n == 0 && k < nlanes; ++k) {
          victim = (home + k) % nlanes;
          if (victim != home && steal_ok(*lanes_[victim], desperate))
            n = take_from_lane(*lanes_[victim], 1, site_out, sink);
        }
        if (n != 0) {
          lanes_[victim]->popped_stolen.fetch_add(
              n, std::memory_order_relaxed);
          steals_.fetch_add(n, std::memory_order_relaxed);
          return n;
        }
      }
      desperate = false;
      // A full round (own lane + every victim) came up dry. The round
      // itself is the emptiness observation — there is no depth word
      // to consult; a task exists exactly when its ring cell or spill
      // slot says so.
      if (closed_.load(std::memory_order_seq_cst)) {
        // Kill-token verification: anything pushed before close() is
        // published before the closed_ store we just acquired, so one
        // more sweep after observing the flag either finds it or
        // proves the queue empty. (Pushes racing close() may be
        // dropped — reopen() semantics — but nothing published
        // happens-before close is ever abandoned.)
        if (!sweep_nonempty()) return 0;
        continue;
      }
      if (++dry_rounds < kDryRoundsBeforeSleep) {
        // Sleep throttle: several dry scan+steal rounds before paying
        // the futex — a busy neighbor usually refills within a round.
        std::this_thread::yield();
        continue;
      }
      dry_rounds = 0;
      // Sleep protocol: register, then re-check. A pusher that may
      // need a thief (surplus task, foreign spill, or a producer-only
      // lane owner) publishes the payload, fences seq_cst, then reads
      // sleepers_; our registration is a seq_cst RMW, so either the
      // pusher sees it and notifies under wait_mu_, or this re-check
      // sees the payload and we skip the wait — no lost wakeup on
      // that path. The re-check is takeable_now, not a bare sweep:
      // it mirrors exactly what a non-desperate round may take, so a
      // consuming owner's depth-1 task (whose push skipped the
      // handshake by design) does not keep thieves spinning awake.
      // Its liveness backstop is the owner's own progress plus the
      // bounded slice below — after which we run one desperate round.
      std::unique_lock<std::mutex> lk(wait_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (!takeable_now(home)) {
        sleeps_.fetch_add(1, std::memory_order_relaxed);
        // Park hook: a sleeping server is at a quiescent point (the
        // values it will consume on wake are still queue-rooted), so
        // it releases its GC unsafe region for the duration. Bounded
        // slice: push()/close() still wake us immediately; the
        // timeout both bounds how long a cancelled server stays
        // parked before its serve loop re-checks the token and is
        // the wake-of-last-resort for throttled owner pushes.
        const std::size_t gcd = gc_ ? gc_->blocking_release() : 0;
        wait_cv_.wait_for(lk, slice);
        if (slice < kMaxSlice) slice *= 2;
        if (gcd != 0) {
          // Re-enter outside wait_mu_: reacquire may block on a
          // stop-the-world, and nobody should hold queue locks then.
          lk.unlock();
          gc_->blocking_reacquire(gcd);
          lk.lock();
        }
        // We paid the futex; the next round ignores the affinity
        // rule so a task parked on a stalled owner's lane is picked
        // up within one sleep slice.
        desperate = true;
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  std::size_t nsites_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  const std::uint64_t id_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::uint32_t> next_lane_{0};

  // The only cross-lane flags; cold. There is no shared hot word at
  // all — every fast-path byte a push or pop touches is lane-local.
  alignas(64) std::atomic<bool> closed_{false};

  // Sleeper handshake (cold path only).
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<int> sleepers_{0};

  // Stats (relaxed; snapshot via stats()). None are touched on the
  // owner fast path — the hot counters live per lane.
  std::atomic<std::uint64_t> batch_extras_{0}, notify_sent_{0},
      spill_pushes_{0}, sleeps_{0}, steals_{0};

  gc::GcHeap* gc_ = nullptr;
};

/// The scheduler the server pool runs on.
using OrderedTaskQueues = WorkStealingTaskQueues;

}  // namespace curare::runtime
