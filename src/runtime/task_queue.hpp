// Ordered task queues for the CRI server pool (paper §4.1).
//
// "If f contains multiple self-recursive calls, then the order of
// invocations can be scrambled by the queue. … This problem can be
// resolved by maintaining an ordered set of queues, one for each call
// site, and by having a server use the next queue only after it
// finishes executing all calls in the current queue."
//
// pop() therefore always drains the lowest-index nonempty queue first.
// Termination uses the paper's kill-token idea: close() wakes every
// server with an empty pop, and they exit.
//
// Two implementations share that contract:
//
//  * SingleMutexTaskQueues — the original centralized queue: one mutex,
//    one condition variable, a deque per site. Kept as the A/B baseline
//    for bench_queue and as the single-threaded ordering oracle in
//    tests. Its push recomputes the total depth with an O(sites) scan
//    under the global lock and notifies on every push — the measured
//    bottleneck this PR removes.
//
//  * ShardedTaskQueues — the low-contention scheduler. Per call site: a
//    lock-free MPMC ring (the hot path) backed by an unbounded
//    mutex-guarded spill deque for overflow. One packed atomic word
//    carries the O(1) total depth and a cached lowest-nonempty-site
//    hint; sleeping servers register in a counter so push only touches
//    the condition variable when someone is actually asleep.
//
// ShardedTaskQueues ordering semantics: per-site FIFO holds for
// causally ordered pushes (a server's own successive enqueues — the
// §4.1 invocation-order requirement), and pop prefers the lowest
// nonempty site. Under concurrent mutation the lowest-site preference
// is best-effort within a race window (two in-flight operations may
// linearize either way), which is indistinguishable from scheduling
// nondeterminism; with a single consumer, or at any quiescent point,
// the order is exact and equal to SingleMutexTaskQueues.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gc/gc.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/mpmc_ring.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

using TaskArgs = std::vector<sexpr::Value>;

/// Counters a queue accumulates between reopen()s; CriRun publishes
/// them to the metrics registry after a run.
struct QueueStats {
  std::uint64_t pushes = 0;       ///< tasks enqueued
  std::uint64_t pops = 0;         ///< tasks dequeued
  std::uint64_t pop_calls = 0;    ///< pop()/pop_some() calls that got ≥1
  std::uint64_t notify_sent = 0;  ///< pushes that signalled a sleeper
  std::uint64_t notify_suppressed = 0;  ///< pushes with no sleeper (no cv)
  std::uint64_t spill_pushes = 0;  ///< pushes that overflowed a ring
  std::uint64_t sleeps = 0;        ///< times a server actually blocked
};

// ---------------------------------------------------------------------------
// SingleMutexTaskQueues: the seed implementation (A/B baseline).
// ---------------------------------------------------------------------------

class SingleMutexTaskQueues {
 public:
  explicit SingleMutexTaskQueues(std::size_t num_sites)
      : queues_(num_sites == 0 ? 1 : num_sites) {}

  /// Enqueue an invocation's arguments at a call site's queue. Returns
  /// the total queued depth after the push (an observability sample —
  /// §4.1's queue-growth discussion made measurable).
  std::size_t push(std::size_t site, TaskArgs args) {
    if (FaultInjector::instance().check(FaultInjector::Site::kQueuePush))
      cv_.notify_all();  // injected spurious wakeup
    std::size_t total = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (site >= queues_.size())
        throw sexpr::LispError("cri: call-site index out of range");
      queues_[site].push_back(std::move(args));
      for (const auto& q : queues_) total += q.size();
      if (total > max_len_) max_len_ = total;
    }
    cv_.notify_one();
    return total;
  }

  /// Block for the next task (lowest-index site first); nullopt when the
  /// queues are closed and empty — the kill token. When `site_out` is
  /// non-null it receives the call-site index the task came from.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::unique_lock<std::mutex> g(mu_);
    for (;;) {
      for (std::size_t i = 0; i < queues_.size(); ++i) {
        auto& q = queues_[i];
        if (!q.empty()) {
          TaskArgs t = std::move(q.front());
          q.pop_front();
          if (site_out) *site_out = i;
          return t;
        }
      }
      if (closed_) return std::nullopt;
      // Park hook: a server sleeping here is at a quiescent point — the
      // values it will consume on wake are still queue-rooted — so it
      // must not hold its unsafe region and stall the collector.
      // Bounded slice: close()/push() still wake us immediately; the
      // timeout only bounds how long a cancelled server can stay parked
      // before its serve loop re-checks the token.
      const std::size_t gcd = gc_ ? gc_->blocking_release() : 0;
      cv_.wait_for(g, std::chrono::milliseconds(100));
      if (gcd != 0) {
        // Re-enter outside the queue lock: reacquire may block on a
        // stop-the-world whose root enumeration needs this mutex.
        g.unlock();
        gc_->blocking_reacquire(gcd);
        g.lock();
      }
    }
  }

  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reset to the open, empty state. Callers must be quiescent.
  void reopen() {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& q : queues_) q.clear();
    closed_ = false;
    max_len_ = 0;
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

  /// High-water mark of total queued tasks (§4.1: with a single call
  /// site the queue never grows beyond its initial length).
  std::size_t max_length() const {
    std::lock_guard<std::mutex> g(mu_);
    return max_len_;
  }

  std::size_t sites() const { return queues_.size(); }

  /// Let blocked pops release their GC unsafe region while sleeping.
  void attach_gc(gc::GcHeap* gc) { gc_ = gc; }

  /// Visit every pending task's argument vector. The collector calls
  /// this while the world is stopped; sleeping servers hold no queue
  /// state, so the mutex is uncontended-or-briefly-held.
  template <typename Fn>
  void for_each_task(Fn&& fn) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& q : queues_)
      for (const TaskArgs& t : q) fn(t);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<TaskArgs>> queues_;
  bool closed_ = false;
  std::size_t max_len_ = 0;
  gc::GcHeap* gc_ = nullptr;
};

// ---------------------------------------------------------------------------
// ShardedTaskQueues: the low-contention scheduler.
// ---------------------------------------------------------------------------

class ShardedTaskQueues {
 public:
  explicit ShardedTaskQueues(std::size_t num_sites,
                             std::size_t ring_capacity = kDefaultRing) {
    const std::size_t n = num_sites == 0 ? 1 : num_sites;
    sites_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      sites_.push_back(std::make_unique<Site>(ring_capacity));
  }

  ShardedTaskQueues(const ShardedTaskQueues&) = delete;
  ShardedTaskQueues& operator=(const ShardedTaskQueues&) = delete;

  /// Enqueue at a call site. Returns the total queued depth after the
  /// push (O(1): one atomic word, no scan — the seed queue recomputed
  /// this with an O(sites) walk under the global lock on every push).
  std::size_t push(std::size_t site, TaskArgs args) {
    if (FaultInjector::instance().check(
            FaultInjector::Site::kQueuePush)) {
      // Injected spurious wakeup for any sleeping server.
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_all();
    }
    if (site >= sites_.size())
      throw sexpr::LispError("cri: call-site index out of range");
    Site& s = *sites_[site];
    // Fast path: lock-free ring append. Legal only while the site has
    // no spilled items — ring items must stay older than spill items so
    // the per-site FIFO survives an overflow episode.
    if (s.spill_count.load(std::memory_order_acquire) != 0 ||
        !s.ring.try_push(std::move(args))) {
      std::lock_guard<std::mutex> g(s.mu);
      if (!(s.spill.empty() && s.ring.try_push(std::move(args)))) {
        s.spill.push_back(std::move(args));
        s.spill_count.store(s.spill.size(), std::memory_order_release);
        spill_pushes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The only hot-path stats RMW; the other push-side counters are
    // derived in stats() (suppressed notifies = pushes − sent).
    pushes_.fetch_add(1, std::memory_order_relaxed);

    // One CAS both bumps the O(1) depth and lowers the scan hint. The
    // seq_cst RMW also forms the store side of the sleeper handshake.
    std::uint64_t w = state_.load(std::memory_order_relaxed);
    std::uint64_t nw;
    do {
      nw = pack(std::min(hint_of(w), site), depth_of(w) + 1);
    } while (!state_.compare_exchange_weak(w, nw, std::memory_order_seq_cst,
                                           std::memory_order_relaxed));
    const std::size_t total =
        depth_positive(nw) ? static_cast<std::size_t>(depth_of(nw)) : 1;

    std::size_t m = max_len_.load(std::memory_order_relaxed);
    while (total > m && !max_len_.compare_exchange_weak(
                            m, total, std::memory_order_relaxed)) {
    }

    // Throttled wakeup: only pay the condition variable (and its futex
    // syscall) when a server is actually asleep.
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      notify_sent_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_one();
    }
    return total;
  }

  /// Block for the next task (lowest-index site first); nullopt when
  /// the queues are closed and empty — the kill token.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::optional<TaskArgs> out;
    pop_loop(1, site_out,
             [&out](TaskArgs&& t) { out.emplace(std::move(t)); });
    return out;
  }

  /// Batched pop: up to `max` tasks, all from the same (lowest nonempty)
  /// site, appended to `out` in FIFO order. Returns the count; 0 is the
  /// kill token. One site-selection + one depth CAS amortized over the
  /// whole batch.
  std::size_t pop_some(std::vector<TaskArgs>& out, std::size_t max,
                       std::size_t* site_out = nullptr) {
    return pop_loop(max == 0 ? 1 : max, site_out,
                    [&out](TaskArgs&& t) { out.push_back(std::move(t)); });
  }

  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> g(wait_mu_);
    wait_cv_.notify_all();
  }

  /// Reset to the open, empty state, dropping any leftover tasks and
  /// zeroing the per-run stats. Callers must be quiescent (no
  /// concurrent push/pop) — CriRun::run calls this before starting its
  /// servers so an aborted run can be retried on the same object.
  void reopen() {
    for (auto& sp : sites_) {
      std::lock_guard<std::mutex> g(sp->mu);
      sp->spill.clear();
      sp->spill_count.store(0, std::memory_order_relaxed);
      TaskArgs t;
      while (sp->ring.try_pop(t)) {
      }
    }
    state_.store(0, std::memory_order_seq_cst);
    max_len_.store(0, std::memory_order_relaxed);
    pushes_.store(0, std::memory_order_relaxed);
    batch_extras_.store(0, std::memory_order_relaxed);
    notify_sent_.store(0, std::memory_order_relaxed);
    spill_pushes_.store(0, std::memory_order_relaxed);
    sleeps_.store(0, std::memory_order_relaxed);
    closed_.store(false, std::memory_order_seq_cst);
  }

  bool closed() const { return closed_.load(std::memory_order_seq_cst); }

  /// Total queued tasks right now (O(1); exact when quiescent).
  std::size_t depth() const {
    const std::uint64_t w = state_.load(std::memory_order_seq_cst);
    return depth_positive(w) ? static_cast<std::size_t>(depth_of(w)) : 0;
  }

  /// High-water mark of total queued tasks (§4.1: with a single call
  /// site the queue never grows beyond its initial length).
  std::size_t max_length() const {
    return max_len_.load(std::memory_order_relaxed);
  }

  std::size_t sites() const { return sites_.size(); }

  /// Exact at any quiescent point (e.g. after the servers joined); the
  /// derived fields can lag by in-flight operations mid-run. Keeping
  /// the derivable counters out of the hot path halves its RMW count.
  QueueStats stats() const {
    QueueStats st;
    st.pushes = pushes_.load(std::memory_order_relaxed);
    st.pops = st.pushes - std::min<std::uint64_t>(st.pushes, depth());
    st.pop_calls =
        st.pops - batch_extras_.load(std::memory_order_relaxed);
    st.notify_sent = notify_sent_.load(std::memory_order_relaxed);
    st.notify_suppressed = st.pushes - st.notify_sent;
    st.spill_pushes = spill_pushes_.load(std::memory_order_relaxed);
    st.sleeps = sleeps_.load(std::memory_order_relaxed);
    return st;
  }

  /// Let blocked pops release their GC unsafe region while sleeping.
  void attach_gc(gc::GcHeap* gc) { gc_ = gc; }

  /// Visit every pending task's argument vector (ring then spill per
  /// site, oldest first). Collector-only, world stopped: concurrent
  /// pushers/poppers are parked, so the rings are quiescent.
  template <typename Fn>
  void for_each_task(Fn&& fn) const {
    for (const auto& sp : sites_) {
      sp->ring.for_each(fn);
      std::lock_guard<std::mutex> g(sp->mu);
      for (const TaskArgs& t : sp->spill) fn(t);
    }
  }

 private:
  static constexpr std::size_t kDefaultRing = 512;

  // One packed word: high 16 bits = cached lowest-nonempty-site hint,
  // low 48 bits = total depth (mod 2^48 — a pop racing ahead of its
  // push's depth CAS makes the field wrap transiently; depth_positive
  // filters that window out). Folding both into the single RMW every
  // push/pop already pays makes the hint raise safe: a pop may raise
  // the hint to the site it served only if the word — and therefore
  // the world — did not change since before its emptiness scan.
  static constexpr std::uint64_t kDepthBits = 48;
  static constexpr std::uint64_t kDepthMask = (1ull << kDepthBits) - 1;

  static std::uint64_t pack(std::size_t hint, std::uint64_t depth) {
    return (static_cast<std::uint64_t>(hint) << kDepthBits) |
           (depth & kDepthMask);
  }
  static std::uint64_t depth_of(std::uint64_t w) { return w & kDepthMask; }
  static std::size_t hint_of(std::uint64_t w) {
    return static_cast<std::size_t>(w >> kDepthBits);
  }
  static bool depth_positive(std::uint64_t w) {
    const std::uint64_t d = w & kDepthMask;
    return d != 0 && d < (1ull << (kDepthBits - 1));
  }

  struct Site {
    explicit Site(std::size_t ring_capacity) : ring(ring_capacity) {}
    MpmcRing<TaskArgs> ring;
    std::atomic<std::size_t> spill_count{0};
    std::mutex mu;  ///< guards spill (and ring refills from it)
    std::deque<TaskArgs> spill;
  };

  /// Take up to `max` tasks from one site, oldest first: drain the ring
  /// (older), then the spill, then refill the ring from the spill so
  /// later pops take the lock-free path again.
  template <typename Sink>
  std::size_t take_from_site(Site& s, std::size_t max, Sink&& sink) {
    std::size_t n = 0;
    TaskArgs t;
    while (n < max && s.ring.try_pop(t)) {
      sink(std::move(t));
      ++n;
    }
    if (n < max && s.spill_count.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> g(s.mu);
      while (n < max && s.ring.try_pop(t)) {
        sink(std::move(t));
        ++n;
      }
      while (n < max && !s.spill.empty()) {
        sink(std::move(s.spill.front()));
        s.spill.pop_front();
        ++n;
      }
      while (!s.spill.empty() &&
             s.ring.try_push(std::move(s.spill.front()))) {
        s.spill.pop_front();
      }
      s.spill_count.store(s.spill.size(), std::memory_order_release);
    }
    return n;
  }

  template <typename Sink>
  std::size_t pop_loop(std::size_t max, std::size_t* site_out,
                       Sink&& sink) {
    const std::size_t nsites = sites_.size();
    for (;;) {
      const std::uint64_t w0 = state_.load(std::memory_order_seq_cst);
      if (depth_positive(w0)) {
        const std::size_t start =
            std::min<std::size_t>(hint_of(w0), nsites - 1);
        for (std::size_t k = 0; k < nsites; ++k) {
          // Preferred region first ([hint..n)); wrap to [0..hint) so a
          // stale hint can delay a low site but never strand it.
          const std::size_t i = (start + k) % nsites;
          const std::size_t taken = take_from_site(*sites_[i], max, sink);
          if (taken == 0) continue;
          // No stats RMW on the unbatched path: pops are derived from
          // pushes − depth, pop_calls from pops − batch extras.
          if (taken > 1)
            batch_extras_.fetch_add(taken - 1, std::memory_order_relaxed);
          if (site_out) *site_out = i;
          // Decrement the depth; raise the hint to i only when nothing
          // raced the word since before our scan (then sites < i were
          // genuinely observed empty). On a race, keep the existing
          // hint — pushes re-lower it themselves.
          std::uint64_t expect = w0;
          if (!state_.compare_exchange_strong(
                  expect, pack(i, depth_of(w0) - taken),
                  std::memory_order_seq_cst, std::memory_order_relaxed)) {
            std::uint64_t w = expect;
            while (!state_.compare_exchange_weak(
                w, pack(hint_of(w), depth_of(w) - taken),
                std::memory_order_seq_cst, std::memory_order_relaxed)) {
            }
          }
          return taken;
        }
        // Depth said nonempty but the scan missed: a push has bumped
        // the counter while its payload is still being published (or a
        // racing pop drained it). Brief, pusher-bounded window.
        std::this_thread::yield();
        continue;
      }
      if (closed_.load(std::memory_order_seq_cst)) return 0;
      // Sleep protocol: register, then re-check depth/closed. A push
      // bumps depth (seq_cst) before reading the sleeper count, so
      // either it sees us registered and notifies under wait_mu_, or we
      // see its depth and skip the wait — no lost wakeup either way.
      std::unique_lock<std::mutex> lk(wait_mu_);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (!depth_positive(state_.load(std::memory_order_seq_cst)) &&
          !closed_.load(std::memory_order_seq_cst)) {
        sleeps_.fetch_add(1, std::memory_order_relaxed);
        // Park hook: a sleeping server is at a quiescent point (the
        // values it will consume on wake are still queue-rooted), so
        // it releases its GC unsafe region for the duration.
        // Bounded slice: push()/close() still wake us immediately; the
        // timeout only bounds how long a cancelled server stays parked
        // before its serve loop re-checks the token.
        const std::size_t gcd = gc_ ? gc_->blocking_release() : 0;
        wait_cv_.wait_for(lk, std::chrono::milliseconds(100));
        if (gcd != 0) {
          // Re-enter outside wait_mu_: reacquire may block on a
          // stop-the-world, and nobody should hold queue locks then.
          lk.unlock();
          gc_->blocking_reacquire(gcd);
          lk.lock();
        }
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  std::vector<std::unique_ptr<Site>> sites_;
  alignas(64) std::atomic<std::uint64_t> state_{0};  ///< hint | depth
  alignas(64) std::atomic<std::size_t> max_len_{0};
  std::atomic<bool> closed_{false};

  // Sleeper handshake (cold path only).
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<int> sleepers_{0};

  // Stats (relaxed; snapshot via stats()). Only pushes_ is touched on
  // the fast path; the rest live on slow/cold paths or are derived.
  std::atomic<std::uint64_t> pushes_{0}, batch_extras_{0},
      notify_sent_{0}, spill_pushes_{0}, sleeps_{0};

  gc::GcHeap* gc_ = nullptr;
};

/// The scheduler the server pool runs on.
using OrderedTaskQueues = ShardedTaskQueues;

}  // namespace curare::runtime
