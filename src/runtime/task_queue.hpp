// Ordered task queues for the CRI server pool (paper §4.1).
//
// "If f contains multiple self-recursive calls, then the order of
// invocations can be scrambled by the queue. … This problem can be
// resolved by maintaining an ordered set of queues, one for each call
// site, and by having a server use the next queue only after it
// finishes executing all calls in the current queue."
//
// pop() therefore always drains the lowest-index nonempty queue first.
// Termination uses the paper's kill-token idea: close() wakes every
// server with an empty pop, and they exit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "sexpr/value.hpp"

namespace curare::runtime {

using TaskArgs = std::vector<sexpr::Value>;

class OrderedTaskQueues {
 public:
  explicit OrderedTaskQueues(std::size_t num_sites)
      : queues_(num_sites == 0 ? 1 : num_sites) {}

  /// Enqueue an invocation's arguments at a call site's queue. Returns
  /// the total queued depth after the push (an observability sample —
  /// §4.1's queue-growth discussion made measurable).
  std::size_t push(std::size_t site, TaskArgs args) {
    std::size_t total = 0;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (site >= queues_.size())
        throw sexpr::LispError("cri: call-site index out of range");
      queues_[site].push_back(std::move(args));
      for (const auto& q : queues_) total += q.size();
      if (total > max_len_) max_len_ = total;
    }
    cv_.notify_one();
    return total;
  }

  /// Block for the next task (lowest-index site first); nullopt when the
  /// queues are closed and empty — the kill token. When `site_out` is
  /// non-null it receives the call-site index the task came from.
  std::optional<TaskArgs> pop(std::size_t* site_out = nullptr) {
    std::unique_lock<std::mutex> g(mu_);
    for (;;) {
      for (std::size_t i = 0; i < queues_.size(); ++i) {
        auto& q = queues_[i];
        if (!q.empty()) {
          TaskArgs t = std::move(q.front());
          q.pop_front();
          if (site_out) *site_out = i;
          return t;
        }
      }
      if (closed_) return std::nullopt;
      cv_.wait(g);
    }
  }

  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

  /// High-water mark of total queued tasks (§4.1: with a single call
  /// site the queue never grows beyond its initial length).
  std::size_t max_length() const {
    std::lock_guard<std::mutex> g(mu_);
    return max_len_;
  }

  std::size_t sites() const { return queues_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::deque<TaskArgs>> queues_;
  bool closed_ = false;
  std::size_t max_len_ = 0;
};

}  // namespace curare::runtime
