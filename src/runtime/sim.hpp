// Discrete-event simulator of the CRI server pool (paper §4.1).
//
// The paper evaluates its execution model analytically (Figure 10's
// T(S) curve) because the target multiprocessors were scarce; this host
// may not have one either (the reference environment has a single
// core). The simulator plays the role of the 5–100 processor machine of
// §1.2: S servers, a central task queue with a serialized dequeue cost,
// chain-spawned invocations (invocation i+1 becomes ready when i's head
// finishes — the enqueue at the recursive call), optional lock blocking
// at a conflict distance k (invocation i's body may not start before
// invocation i−k has unlocked at its completion, §3.2.1).
//
// With zero dequeue cost and no conflicts this reproduces the paper's
//   T(S) = (⌈d/S⌉−1)(h+t) + (S·h+t)
// shape; with conflicts it exhibits the min-distance concurrency cap;
// with dequeue cost it exposes the central-queue bottleneck of §4.1.
#pragma once

#include <cstddef>
#include <vector>

namespace curare::runtime {

struct SimParams {
  double head_cost = 1.0;  ///< h: time units before/including the spawn
  double tail_cost = 0.0;  ///< t: time units after the spawn
  std::size_t depth = 1;   ///< d: number of invocations in the chain
  std::size_t servers = 1; ///< S
  /// Lock-imposed ordering: invocation i may not start its body until
  /// invocation i−k completed (0 = conflict-free).
  std::size_t conflict_distance = 0;
  /// Serialized time to pop the central queue (0 = free queue).
  double dequeue_cost = 0.0;
};

struct SimResult {
  double total_time = 0.0;       ///< completion time of the recursion
  double busy_time = 0.0;        ///< Σ per-invocation service time
  double avg_concurrency = 0.0;  ///< busy_time / total_time
  /// Speedup over the same workload on one server.
  double speedup_vs_one(const SimParams& p) const;
};

SimResult simulate_cri(const SimParams& p);

/// Per-invocation schedule, for Figure 6/7-style visualizations.
struct InvocationTrace {
  double start = 0;     ///< body begins (post-dequeue)
  double head_end = 0;  ///< spawn point: the next invocation is ready
  double finish = 0;    ///< tail done (unlock point under conflicts)
  std::size_t server = 0;
};

/// Simulate and return the full schedule (same model as simulate_cri).
std::vector<InvocationTrace> simulate_cri_trace(const SimParams& p);

}  // namespace curare::runtime
