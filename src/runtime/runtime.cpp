#include "runtime/runtime.hpp"

#include <sstream>
#include <vector>

#include "lisp/function.hpp"
#include "runtime/eval_tick.hpp"
#include "runtime/fault_injector.hpp"
#include "sexpr/printer.hpp"

namespace curare::runtime {

using lisp::Interp;
using sexpr::as_cons;
using sexpr::as_symbol;
using sexpr::Cons;
using sexpr::Kind;
using sexpr::LispError;
using sexpr::Symbol;
using sexpr::Value;

namespace {

FutureObj* as_future(Value v) {
  if (!v.is(Kind::Native)) return nullptr;
  return dynamic_cast<FutureObj*>(v.obj());
}

bool parse_mode_exclusive(std::span<const Value> args, std::size_t idx) {
  if (args.size() <= idx) return true;  // default: exclusive
  Symbol* m = as_symbol(args[idx]);
  if (m->name == "read") return false;
  if (m->name == "write") return true;
  throw LispError("%lock: mode must be 'read or 'write, got " + m->name);
}

LocKey cell_key(Value cell, Value field) {
  // Locking "off the end" of a structure (the location expression
  // evaluated to nil) protects nothing and touches nothing: a no-op key
  // is represented by a null object and filtered by the caller.
  if (cell.is_nil()) return LocKey{};
  if (cell.is(Kind::Cons) || cell.is(Kind::Struct))
    return LocKey{cell.obj(), as_symbol(field)};
  throw LispError("%lock: location container must be a cons or struct");
}

}  // namespace

Runtime::Runtime(Interp& interp, std::size_t workers)
    : interp_(interp), futures_(workers, &recorder_) {
  locks_.set_recorder(&recorder_);
  watchdog_.set_recorder(&recorder_);
  // Pre-register the resilience counters so clean runs report them as
  // explicit zeros in --stats (a BENCH run asserting "no stalls" needs
  // the row to exist).
  recorder_.metrics.counter("cri.stalls");
  recorder_.metrics.counter("cri.aborts");
  // Ring wrap-around drops trace events silently; count them into the
  // registry so a truncated Chrome trace is diagnosable from --stats.
  recorder_.tracer.set_drop_counter(
      &recorder_.metrics.counter("obs.trace.dropped"));
  gc::GcHeap& gc = interp_.ctx().heap.gc();
  futures_.attach_gc(&gc);
  gc.add_root_source(this);
  // Report every collection into the observability bundle. The callback
  // runs on the collecting thread right after the world restarts.
  gc.set_pause_callback([this](const gc::GcPause& p) {
    obs::Metrics& m = recorder_.metrics;
    m.counter("cri.gc.collections").add(1);
    m.histogram("cri.gc.pause_ns").observe(p.pause_ns);
    m.counter("cri.gc.reclaimed_objects").add(p.reclaimed_objects);
    m.counter("cri.gc.reclaimed_bytes").add(p.reclaimed_bytes);
    m.gauge("cri.gc.live_objects")
        .set(static_cast<std::int64_t>(p.live_objects));
    m.gauge("cri.gc.heap_bytes")
        .set(static_cast<std::int64_t>(p.heap_bytes));
    if (recorder_.tracer.enabled()) {
      const std::uint64_t end = recorder_.tracer.now_ns();
      const std::uint64_t start =
          end > p.pause_ns ? end - p.pause_ns : 0;
      recorder_.tracer.emit(obs::EventKind::kGcPause, start, p.pause_ns,
                            p.reclaimed_objects, p.reclaimed_bytes);
    }
  });
}

Runtime::~Runtime() {
  gc::GcHeap& gc = interp_.ctx().heap.gc();
  gc.set_pause_callback(nullptr);
  gc.remove_root_source(this);
}

void Runtime::gc_roots(std::vector<sexpr::Value>& out) {
  std::lock_guard<std::mutex> g(stats_mu_);
  out.push_back(last_stats_.result);
}

CriStats Runtime::run_cri(Value fn, std::size_t num_sites,
                          std::size_t servers, TaskArgs initial_args,
                          std::string label, std::size_t batch) {
  return run_cri_in(interp_, fn, num_sites, servers,
                    std::move(initial_args), std::move(label), batch);
}

CriStats Runtime::run_cri_in(Interp& in, Value fn, std::size_t num_sites,
                             std::size_t servers, TaskArgs initial_args,
                             std::string label, std::size_t batch) {
  if (label.empty()) {
    // Name the speedup-report row after the server function when it has
    // a printable name.
    if (fn.is(Kind::Symbol)) {
      label = as_symbol(fn)->name;
    } else if (fn.is(Kind::Closure)) {
      label = static_cast<lisp::Closure*>(fn.obj())->name;
    }
  }
  CriRun run(in, fn, num_sites, servers, &recorder_, std::move(label));
  run.set_batch_limit(batch);
  ResilienceConfig rc;
  rc.deadline_ms = deadline_ms_.load(std::memory_order_relaxed);
  rc.stall_ms = stall_ms_.load(std::memory_order_relaxed);
  rc.watchdog = &watchdog_;
  // Chain the run under the caller's token (request deadline, CLI batch
  // deadline, daemon drain): firing that token aborts this run too. The
  // caller's frame encloses run() below, so the borrow is safe.
  rc.parent = current_cancel();
  // The run can describe its own queues; the state only the Runtime
  // sees — held locks, future-pool backlog — rides in via extra_dump.
  rc.extra_dump = [this] {
    std::string s = locks_.dump_held();
    s += "future pool: " + std::to_string(futures_.pending_tasks()) +
         " task(s) queued\n";
    return s;
  };
  run.set_resilience(std::move(rc));
  CriStats stats = run.run(std::move(initial_args));
  std::lock_guard<std::mutex> g(stats_mu_);
  last_stats_ = stats;
  return last_stats_;
}

std::string Runtime::resilience_report() {
  std::ostringstream os;
  const std::int64_t dl = deadline_ms_.load(std::memory_order_relaxed);
  const std::int64_t st = stall_ms_.load(std::memory_order_relaxed);
  const std::int64_t wb = locks_.wait_budget_ms();
  os << "resilience:\n";
  os << "  deadline: "
     << (dl > 0 ? std::to_string(dl) + " ms" : std::string("off"))
     << ", stall watchdog: "
     << (st > 0 ? std::to_string(st) + " ms" : std::string("off"))
     << ", lock wait budget: "
     << (wb > 0 ? std::to_string(wb) + " ms" : std::string("off"))
     << "\n";
  os << "  stalls detected: " << watchdog_.stalls_detected()
     << ", runs aborted: "
     << recorder_.metrics.counter("cri.aborts").get() << "\n";
  os << "  eval cancel polls: " << eval_poll_count()
     << " (shared tick, tree + vm engines)\n";
  os << FaultInjector::instance().report();
  os << locks_.dump_held();
  return os.str();
}

Value Runtime::force_tree(Value v) {
  gc::MutatorScope gc_scope(interp_.ctx().heap.gc());
  if (FutureObj* f = as_future(v)) v = futures_.touch(f->state);
  if (!v.is(Kind::Cons)) return v;
  // Iterative spine walk with recursion on cars keeps stack use bounded
  // by tree depth, not list length.
  Value cell = v;
  while (cell.is(Kind::Cons)) {
    Cons* c = static_cast<Cons*>(cell.obj());
    Value a = c->car();
    Value forced_a = force_tree(a);
    if (forced_a != a) c->set_car(forced_a);
    Value d = c->cdr();
    if (FutureObj* f = as_future(d)) {
      d = futures_.touch(f->state);
      c->set_cdr(d);
    }
    if (!d.is(Kind::Cons)) break;  // nil or atom tail: spine done
    cell = d;
  }
  return v;
}

void Runtime::install() { install_into(interp_); }

void Runtime::install_into(Interp& in) {
  // ---- location locks (§3.2.1) ---------------------------------------
  in.define_builtin("%lock", 2, 3, [this](Interp&,
                                          std::span<const Value> a) {
    LocKey key = cell_key(a[0], a[1]);
    if (key.object != nullptr) locks_.lock(key, parse_mode_exclusive(a, 2));
    return Value::nil();
  });
  in.define_builtin("%unlock", 2, 3, [this](Interp&,
                                            std::span<const Value> a) {
    LocKey key = cell_key(a[0], a[1]);
    if (key.object != nullptr)
      locks_.unlock(key, parse_mode_exclusive(a, 2));
    return Value::nil();
  });
  in.define_builtin("%lock-var", 1, 1, [this](Interp&,
                                              std::span<const Value> a) {
    locks_.lock(LocKey{as_symbol(a[0]), nullptr}, true);
    return Value::nil();
  });
  in.define_builtin("%unlock-var", 1, 1, [this](Interp&,
                                                std::span<const Value> a) {
    locks_.unlock(LocKey{as_symbol(a[0]), nullptr}, true);
    return Value::nil();
  });

  // ---- atomic reordered updates (§3.2.3) --------------------------------
  in.define_builtin("%atomic-add", 3, 3, [](Interp&,
                                            std::span<const Value> a) {
    Symbol* field = as_symbol(a[1]);
    const std::int64_t delta = lisp::as_int(a[2]);
    std::atomic<std::uint64_t>* slot = nullptr;
    if (a[0].is(Kind::Cons)) {
      Cons* cell = static_cast<Cons*>(a[0].obj());
      if (field->name == "car") {
        slot = &cell->car_bits;
      } else if (field->name == "cdr") {
        slot = &cell->cdr_bits;
      } else {
        throw LispError("%atomic-add: cons field must be car or cdr");
      }
    } else if (a[0].is(Kind::Struct)) {
      auto* inst = static_cast<lisp::Instance*>(a[0].obj());
      const int idx = inst->type->slot_index(field);
      if (idx < 0)
        throw LispError("%atomic-add: no field " + field->name + " in " +
                        inst->type->name->name);
      slot = &inst->slots[static_cast<std::size_t>(idx)];
    } else {
      throw LispError("%atomic-add: container must be a cons or struct");
    }
    // CAS loop over the tagged fixnum representation.
    std::uint64_t old_bits = slot->load(std::memory_order_relaxed);
    for (;;) {
      Value old_val = Value::from_bits(old_bits);
      if (!old_val.is_fixnum())
        throw LispError("%atomic-add: location does not hold a fixnum");
      Value new_val = Value::fixnum(old_val.as_fixnum() + delta);
      if (slot->compare_exchange_weak(old_bits, new_val.bits(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return new_val;
      }
    }
  });
  in.define_builtin("%atomic-incf-var", 2, 2,
                    [this](Interp& i, std::span<const Value> a) {
                      Symbol* var = as_symbol(a[0]);
                      const std::int64_t delta = lisp::as_int(a[1]);
                      const LocKey key{var, nullptr};
                      locks_.lock(key, true);
                      Value nv;
                      try {
                        auto old = i.global_env()->lookup(var);
                        const std::int64_t base =
                            old ? lisp::as_int(*old) : 0;
                        nv = Value::fixnum(base + delta);
                        i.global_env()->set(var, nv);
                      } catch (...) {
                        locks_.unlock(key, true);
                        throw;
                      }
                      locks_.unlock(key, true);
                      return nv;
                    });

  // ---- generic atomic/locked update for any operator -----------------
  // (%locked-update-var 'v fn) applies fn to the current value under the
  // variable's lock — atomizing a declared commutative+associative op
  // that is not natively atomic ("non-atomic commutative and associative
  // operations can be made atomic with the aid of locks", §3.2.3).
  in.define_builtin("%locked-update-var", 2, 2,
                    [this](Interp& i, std::span<const Value> a) {
                      Symbol* var = as_symbol(a[0]);
                      const LocKey key{var, nullptr};
                      locks_.lock(key, true);
                      Value nv;
                      try {
                        auto old = i.global_env()->lookup(var);
                        const Value args[] = {old ? *old : Value::nil()};
                        nv = i.apply(a[1], args);
                        i.global_env()->set(var, nv);
                      } catch (...) {
                        locks_.unlock(key, true);
                        throw;
                      }
                      locks_.unlock(key, true);
                      return nv;
                    });

  // (%locked-update cell 'field fn): apply fn to the field's value under
  // the location's lock — atomizes a declared comm+assoc operator on a
  // structure location.
  in.define_builtin(
      "%locked-update", 3, 3, [this](Interp& i, std::span<const Value> a) {
        Symbol* field = as_symbol(a[1]);
        std::function<Value()> get;
        std::function<void(Value)> set;
        if (a[0].is(Kind::Cons)) {
          Cons* cell = static_cast<Cons*>(a[0].obj());
          const bool is_car = field->name == "car";
          if (!is_car && field->name != "cdr")
            throw LispError("%locked-update: cons field must be car or "
                            "cdr");
          get = [cell, is_car] {
            return is_car ? cell->car() : cell->cdr();
          };
          set = [cell, is_car](Value v) {
            if (is_car) {
              cell->set_car(v);
            } else {
              cell->set_cdr(v);
            }
          };
        } else if (a[0].is(Kind::Struct)) {
          auto* inst = static_cast<lisp::Instance*>(a[0].obj());
          const int idx = inst->type->slot_index(field);
          if (idx < 0)
            throw LispError("%locked-update: no field " + field->name);
          get = [inst, idx] { return inst->get(idx); };
          set = [inst, idx](Value v) { inst->set(idx, v); };
        } else {
          throw LispError(
              "%locked-update: container must be a cons or struct");
        }
        const LocKey key{a[0].obj(), field};
        locks_.lock(key, true);
        Value nv;
        try {
          const Value args[] = {get()};
          nv = i.apply(a[2], args);
          set(nv);
        } catch (...) {
          locks_.unlock(key, true);
          throw;
        }
        locks_.unlock(key, true);
        return nv;
      });

  // ---- CRI server pool (§4) --------------------------------------------
  in.define_builtin("%cri-enqueue", 1, -1,
                    [](Interp&, std::span<const Value> a) {
                      CriRun* run = CriRun::current();
                      if (run == nullptr) {
                        throw LispError(
                            "%cri-enqueue outside of a CRI server pool");
                      }
                      const std::int64_t site = lisp::as_int(a[0]);
                      run->enqueue(static_cast<std::size_t>(site),
                                   TaskArgs(a.begin() + 1, a.end()));
                      return Value::nil();
                    });
  in.define_builtin("%cri-finish", 0, 1,
                    [](Interp&, std::span<const Value> a) {
                      CriRun* run = CriRun::current();
                      if (run == nullptr) {
                        throw LispError(
                            "%cri-finish outside of a CRI server pool");
                      }
                      run->finish(a.empty() ? Value::nil() : a[0]);
                      return Value::nil();
                    });
  in.define_builtin(
      "%cri-run", 3, -1, [this](Interp& i, std::span<const Value> a) {
        Value fn = a[0];
        const auto num_sites =
            static_cast<std::size_t>(lisp::as_int(a[1]));
        const auto servers = static_cast<std::size_t>(lisp::as_int(a[2]));
        // The *calling* interpreter hosts the run, so a session's CRI
        // servers resolve globals in that session's environment.
        CriStats stats = run_cri_in(i, fn, num_sites, servers,
                                    TaskArgs(a.begin() + 3, a.end()));
        // Any-result searches deliver their value through finish; plain
        // recursions yield nil here (results come via result variables
        // or DPS destinations).
        return stats.result;
      });

  // ---- futures (§3.1) -----------------------------------------------------
  in.define_builtin("spawn", 1, 1, [this](Interp& i,
                                          std::span<const Value> a) {
    Value thunk = a[0];
    auto state = futures_.spawn([&i, thunk] {
      return i.apply(thunk, {});
    }, thunk);
    return Value::object(i.ctx().heap.alloc<FutureObj>(std::move(state)));
  });
  in.define_builtin("future-p", 1, 1, [](Interp& i,
                                         std::span<const Value> a) {
    return as_future(a[0]) != nullptr ? Value::object(i.ctx().s_t)
                                      : Value::nil();
  });
  in.define_builtin("force-tree", 1, 1, [this](Interp&,
                                               std::span<const Value> a) {
    return force_tree(a[0]);
  });

  in.set_spawn_hook([this](Interp& i, Value thunk) {
    // The thunk rides along as the task's root: a queued future's
    // closure (and everything it captures) must survive collections
    // that happen before a worker picks it up.
    auto state =
        futures_.spawn([&i, thunk] { return i.apply(thunk, {}); }, thunk);
    return Value::object(i.ctx().heap.alloc<FutureObj>(std::move(state)));
  });
  in.set_touch_hook([this](Interp&, Value v) {
    if (FutureObj* f = as_future(v)) return futures_.touch(f->state);
    return v;
  });
}

}  // namespace curare::runtime
