// Location lock manager (paper §3.2.1).
//
// Curare's locking transformation inserts Lock(M)/Unlock(M) around a
// conflicting location M, where M is a single memory cell — a field of a
// cons (or a global variable). The paper notes some architectures have
// per-word lock tags; ours doesn't, so this manager keeps a dynamic map
// from location keys to lock entries, exactly the "more-costly,
// dynamically-allocated collection of locks" alternative it describes.
//
// Semantics:
//  * read/write (shared/exclusive) modes — §3.2.1's "replace exclusive
//    locks by read-write locks in cases in which more than one
//    invocation reads M";
//  * writer reentrancy per thread (an invocation may lock a coalesced
//    location and then touch it through several statements);
//  * no deadlock by construction of the transformed programs: all locks
//    are acquired in the head, and heads execute in sequential
//    invocation order, so acquisition order is globally consistent
//    (two-phase locking, §3.2.1).
//
// The table is sharded: a location hashes to one of kShards shards, each
// with its own mutex + cv + entry map, so unrelated locations rarely
// contend on manager state.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/recorder.hpp"
#include "sexpr/value.hpp"

namespace curare::runtime {

/// A lockable location: a field of a heap object, or a global variable
/// (object = the Symbol, field = nullptr).
struct LocKey {
  const sexpr::Obj* object = nullptr;
  const sexpr::Symbol* field = nullptr;

  friend bool operator==(const LocKey&, const LocKey&) = default;
};

struct LocKeyHash {
  /// splitmix64 finalizer. Pointer values are dominated by alignment
  /// zeros in their low bits; feeding them into `% kShards` (or the
  /// unordered_map's bucket count) without mixing collapses traffic
  /// onto a handful of shards. The finalizer diffuses every input bit
  /// into the low bits the modulo actually uses.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::size_t operator()(const LocKey& k) const {
    const auto obj = reinterpret_cast<std::uintptr_t>(k.object);
    const auto fld = reinterpret_cast<std::uintptr_t>(k.field);
    return static_cast<std::size_t>(mix(obj ^ mix(fld)));
  }
};

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquire `key`. Throws LispError on a same-thread read→write
  /// upgrade (the thread would wait for its own shared hold to drain —
  /// a guaranteed self-deadlock, see DESIGN.md §10), StallError when
  /// the caller's CancelState fires or the wait budget is exceeded.
  void lock(const LocKey& key, bool exclusive);
  void unlock(const LocKey& key, bool exclusive);

  /// Cap any single blocked acquisition at `ms` milliseconds (0 = no
  /// budget, the default). On exceed, lock() throws a StallError whose
  /// dump is the held-lock table.
  void set_wait_budget_ms(std::int64_t ms) {
    wait_budget_ms_.store(ms, std::memory_order_relaxed);
  }
  std::int64_t wait_budget_ms() const {
    return wait_budget_ms_.load(std::memory_order_relaxed);
  }

  /// Human-readable table of currently held entries — the lock half of
  /// every stall dump. Takes each shard mutex briefly; callers must not
  /// hold one (lock() drops its shard before building diagnostics).
  std::string dump_held() const;

  /// Drop every entry and wake all waiters. For tests and the chaos
  /// harness only: an injected throw between a Lisp-level lock and its
  /// unlock leaks the hold, and reset() is the documented way to
  /// recover the manager between chaos iterations.
  void reset();

  /// Attach an observability recorder (§3.2.1's lock-cost question made
  /// measurable: acquisition counts, contention counts, wait-time
  /// histograms, plus wait/acquire/release trace events). Pass nullptr
  /// to detach. Call before concurrent use — not thread-safe against
  /// in-flight lock()/unlock().
  void set_recorder(obs::Recorder* rec);

  /// Number of lock/unlock operations served (for benchmarks).
  std::uint64_t operations() const {
    return ops_.load(std::memory_order_relaxed);
  }

  /// Entries currently held somewhere (for tests).
  std::size_t live_entries() const;

 private:
  struct Entry {
    int readers = 0;
    std::thread::id writer{};
    int writer_depth = 0;
    /// Which threads hold shared and how many times each — what makes
    /// the read→write upgrade detectable. Tiny in practice (readers of
    /// one location at one instant), so a flat vector beats a map.
    std::vector<std::pair<std::thread::id, int>> reader_holds;

    int holds_by(std::thread::id t) const {
      for (const auto& [tid, n] : reader_holds)
        if (tid == t) return n;
      return 0;
    }
  };

  static constexpr std::size_t kShards = 64;

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LocKey, Entry, LocKeyHash> entries;
  };

  Shard& shard_for(const LocKey& key) {
    return shards_[LocKeyHash{}(key) % kShards];
  }
  const Shard& shard_for(const LocKey& key) const {
    return shards_[LocKeyHash{}(key) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::int64_t> wait_budget_ms_{0};

  // Resolved once in set_recorder so lock() never touches the metrics
  // registry's mutex.
  obs::Recorder* rec_ = nullptr;
  obs::Counter* acquisitions_ = nullptr;
  obs::Counter* contended_ = nullptr;
  obs::Histogram* wait_ns_ = nullptr;
};

}  // namespace curare::runtime
