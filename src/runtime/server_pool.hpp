// The CRI server pool (paper §4).
//
// "Because every transaction executes an identical function body, we can
// have a collection of servers that repeatedly execute this piece of
// code. Each server only needs to obtain the arguments to an invocation
// to begin executing a new task. It does not need to execute a process
// context switch."
//
// The abstract server model of §4.1:
//
//     while ¬ *recursion-done* do
//        dequeue parameters;
//        {body of f}
//     end
//
// CriRun realizes it: S std::threads loop dequeue→apply on a transformed
// function whose recursive calls were rewritten to (%cri-enqueue site
// args…). Termination: a pending-task counter (enqueue +1, completion
// −1, initial call = 1) closes the queues at zero — the invocation that
// terminates the recursion effectively "enqueues tokens that kill the
// other servers".
#pragma once

#include <atomic>
#include <thread>

#include "lisp/interp.hpp"
#include "runtime/task_queue.hpp"

namespace curare::runtime {

struct CriStats {
  std::uint64_t invocations = 0;
  std::size_t max_queue_length = 0;
  std::size_t servers = 0;
  /// Value delivered by %cri-finish (any-result searches, §3.2.3);
  /// nil when the recursion ran to completion.
  sexpr::Value result;
  bool finished_early = false;
};

class CriRun {
 public:
  /// `fn` is the transformed server-body function (a Closure value);
  /// `num_sites` the number of recursive call sites it enqueues to;
  /// `servers` the number of server threads S.
  CriRun(lisp::Interp& interp, sexpr::Value fn, std::size_t num_sites,
         std::size_t servers);

  /// Execute the recursion started by `initial_args` to completion.
  /// Blocks; rethrows the first body error. Returns the statistics.
  CriStats run(TaskArgs initial_args);

  /// Called (via the %cri-enqueue builtin) from server threads.
  void enqueue(std::size_t site, TaskArgs args);

  /// Any-result search termination (§3.2.3): deliver a result and kill
  /// the remaining servers. First call wins; later calls are ignored
  /// ("a search can proceed in parallel without the additional
  /// constraint of having to find the same result as a sequential
  /// search").
  void finish(sexpr::Value result);

  /// The CriRun the calling server thread is executing for, if any.
  static CriRun* current();

 private:
  void serve();

  lisp::Interp& interp_;
  sexpr::Value fn_;
  OrderedTaskQueues queues_;
  std::size_t servers_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::uint64_t> invocations_{0};

  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::mutex result_mu_;
  sexpr::Value result_;
  bool finished_early_ = false;
};

}  // namespace curare::runtime
