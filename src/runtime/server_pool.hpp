// The CRI server pool (paper §4).
//
// "Because every transaction executes an identical function body, we can
// have a collection of servers that repeatedly execute this piece of
// code. Each server only needs to obtain the arguments to an invocation
// to begin executing a new task. It does not need to execute a process
// context switch."
//
// The abstract server model of §4.1:
//
//     while ¬ *recursion-done* do
//        dequeue parameters;
//        {body of f}
//     end
//
// CriRun realizes it: S std::threads loop dequeue→apply on a transformed
// function whose recursive calls were rewritten to (%cri-enqueue site
// args…). Termination: a pending-task counter (enqueue +1, completion
// −1, initial call = 1) closes the queues at zero — the invocation that
// terminates the recursion effectively "enqueues tokens that kill the
// other servers".
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "gc/gc.hpp"
#include "lisp/interp.hpp"
#include "obs/recorder.hpp"
#include "obs/request.hpp"
#include "runtime/resilience.hpp"
#include "runtime/task_queue.hpp"

namespace curare::runtime {

struct CriStats {
  std::uint64_t invocations = 0;
  std::size_t max_queue_length = 0;
  std::size_t servers = 0;
  /// Value delivered by %cri-finish (any-result searches, §3.2.3);
  /// nil when the recursion ran to completion.
  sexpr::Value result;
  bool finished_early = false;
  /// Scheduler internals for the run (sharded-queue counters: notify
  /// throttling, ring overflow, actual sleeps, batch amortization).
  QueueStats queue;

  // ---- measured aggregates (filled when a Recorder is attached) ----
  std::uint64_t wall_ns = 0;      ///< run() start → all servers joined
  std::uint64_t enqueues = 0;     ///< %cri-enqueue calls (excl. initial)
  /// Σ over invocations of measured head time (task begin → last
  /// enqueue) and tail time (last enqueue → task end). A base case with
  /// no enqueue is all head — the paper's H contains everything not
  /// dominated by a recursive call.
  std::uint64_t head_ns = 0;
  std::uint64_t tail_ns = 0;
  /// Per-server time inside task bodies / blocked in pop().
  std::vector<std::uint64_t> busy_ns;
  std::vector<std::uint64_t> idle_ns;
  std::vector<std::uint64_t> tasks_per_server;

  std::uint64_t busy_ns_total() const {
    return std::accumulate(busy_ns.begin(), busy_ns.end(),
                           std::uint64_t{0});
  }
  std::uint64_t idle_ns_total() const {
    return std::accumulate(idle_ns.begin(), idle_ns.end(),
                           std::uint64_t{0});
  }
  /// Fraction of server-thread time spent inside task bodies.
  double utilization() const {
    const double busy = static_cast<double>(busy_ns_total());
    const double occ = busy + static_cast<double>(idle_ns_total());
    return occ > 0 ? busy / occ : 0.0;
  }
};

/// Per-run abort policy (DESIGN.md §10). Zeroes disable each feature;
/// the watchdog pointer is borrowed (the Runtime owns it).
struct ResilienceConfig {
  std::int64_t deadline_ms = 0;  ///< whole-run wall-clock budget
  std::int64_t stall_ms = 0;     ///< no-completion window before abort
  Watchdog* watchdog = nullptr;  ///< required for stall_ms to act
  /// Caller-level token (borrowed; must outlive run()): the run's own
  /// per-run token is chained under it, so a fired request token —
  /// per-request deadline, daemon drain — aborts this run as well.
  CancelState* parent = nullptr;
  /// Appended to the run's diagnostic dump (held locks, future-pool
  /// backlog — state the run cannot see itself).
  std::function<std::string()> extra_dump;
};

class CriRun : public gc::RootSource {
 public:
  /// `fn` is the transformed server-body function (a Closure value);
  /// `num_sites` the number of recursive call sites it enqueues to;
  /// `servers` the number of server threads S. A non-null `rec` turns
  /// on per-invocation timing, metrics, trace events, and a
  /// SpeedupReport entry labelled `label`.
  CriRun(lisp::Interp& interp, sexpr::Value fn, std::size_t num_sites,
         std::size_t servers, obs::Recorder* rec = nullptr,
         std::string label = {});
  ~CriRun() override;

  /// Execute the recursion started by `initial_args` to completion.
  /// Blocks; rethrows the first body error. Returns the statistics.
  /// Re-runnable: run() resets all termination accounting and reopens
  /// the queues, so the same CriRun can be run again after an aborted
  /// (thrown) or early-finished run.
  CriStats run(TaskArgs initial_args);

  /// Per-server dequeue batch limit (default 1 = classic behavior).
  /// A server may take up to `n` tasks from one site in a single
  /// scheduler transaction and execute them in order; §4.1's site
  /// ordering is preserved because a batch never spans sites. Larger
  /// batches trade queue pressure for work-distribution granularity.
  void set_batch_limit(std::size_t n) {
    batch_limit_ = n == 0 ? 1 : n;
  }
  std::size_t batch_limit() const { return batch_limit_; }

  /// Called (via the %cri-enqueue builtin) from server threads.
  void enqueue(std::size_t site, TaskArgs args);

  /// Any-result search termination (§3.2.3): deliver a result and kill
  /// the remaining servers. First call wins; later calls are ignored
  /// ("a search can proceed in parallel without the additional
  /// constraint of having to find the same result as a sequential
  /// search").
  void finish(sexpr::Value result);

  /// Install the abort policy for subsequent run() calls. A fresh
  /// CancelState is minted per run, so an aborted run leaves no fired
  /// token behind and the CriRun stays re-runnable.
  void set_resilience(ResilienceConfig cfg) { resil_ = std::move(cfg); }

  /// Diagnostic snapshot: servers, pending count, queue depths,
  /// invocation progress, plus the config's extra_dump. Safe from any
  /// thread (atomics + O(1) queue reads only).
  std::string dump_state() const;

  /// Tasks whose bodies finished (successfully or not) — the watchdog's
  /// progress signal. invocations() counts starts; a wedged body starts
  /// but never completes.
  std::uint64_t completions() const {
    return completions_.load(std::memory_order_relaxed);
  }

  /// The CriRun the calling server thread is executing for, if any.
  static CriRun* current();

  /// Collector callback (world stopped): the server-body closure, the
  /// early-finish result, and the argument Values of every task still
  /// sitting in the site queues are live.
  void gc_roots(std::vector<sexpr::Value>& out) override;

 private:
  void serve(std::size_t server_index);

  lisp::Interp& interp_;
  gc::GcHeap& gc_;
  sexpr::Value fn_;
  OrderedTaskQueues queues_;
  std::size_t servers_;
  std::size_t batch_limit_ = 1;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> completions_{0};
  ResilienceConfig resil_;
  /// This run's cancellation token; replaced at every run() start.
  /// Server threads read the pointer only between run()'s reset and
  /// join, where it is stable.
  std::shared_ptr<CancelState> token_;
  /// The serving request that started this run (run() captures the
  /// caller's context); servers install it so their spans and lock
  /// waits attribute to that request. Same stability rules as token_.
  std::shared_ptr<obs::RequestContext> req_ctx_;
  /// Set by finish() and by the first body error: remaining queued
  /// tasks are discarded (with exact pending_ accounting) instead of
  /// executed, so servers stop promptly and a later run() starts from
  /// consistent state.
  std::atomic<bool> stop_{false};

  obs::Recorder* rec_;
  obs::Histogram* qdepth_ = nullptr;  ///< resolved once, hit per enqueue
  std::string label_;
  std::atomic<std::uint64_t> enqueues_{0};
  std::atomic<std::uint64_t> head_ns_{0};
  std::atomic<std::uint64_t> tail_ns_{0};
  // Indexed by server; each slot written only by its own thread, read
  // after join.
  std::vector<std::uint64_t> busy_ns_;
  std::vector<std::uint64_t> idle_ns_;
  std::vector<std::uint64_t> tasks_per_server_;

  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::mutex result_mu_;
  sexpr::Value result_;
  bool finished_early_ = false;
};

}  // namespace curare::runtime
