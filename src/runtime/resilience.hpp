// Deadlines, cancellation, and the stall watchdog.
//
// The paper's §3.2 guarantee — transformed programs cannot deadlock —
// holds only for programs the transformer produced. This runtime also
// executes hand-written %lock/%future code, where one bad program used
// to hang the process: LockManager::lock waited forever, CriRun::run
// joined servers that never finished, FuturePool::touch blocked on a
// cv nobody would signal. The resilience layer makes every one of
// those blocking points interruptible:
//
//   * CancelState is a shared token: an atomic cancelled flag, an
//     atomic monotonic-clock deadline, and (under a mutex) the reason
//     plus a diagnostic dump captured at cancel time.
//   * CancelScope installs a token as the calling thread's *current*
//     token (thread-local); every blocking wait in the runtime — and
//     the interpreter's eval loop — polls it via poll_cancellation().
//   * Cancellation raises StallError, which carries the dump (queue
//     depths, held-lock table, server state) so a hung run dies with
//     an explanation instead of a stack of parked threads.
//   * Watchdog is a lazily-started thread that arms per CriRun: if the
//     run's completion counter stops advancing for the configured
//     stall window, the watchdog fires the run's token and bumps
//     cri.stalls.
//
// All waits stay notify-driven; the wait_for slices added around them
// are a cancellation backstop, not a polling protocol — an uncancelled
// run never observes different behavior, just a periodic predicate
// re-check.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sexpr/value.hpp"

namespace curare::obs {
struct Recorder;
class Counter;
}  // namespace curare::obs

namespace curare::runtime {

/// A cancelled or timed-out blocking operation. The message says what
/// was exceeded; dump() carries the diagnostic state captured when the
/// token fired (queue depths, held locks, per-server progress).
class StallError : public sexpr::LispError {
 public:
  explicit StallError(std::string msg, std::string dump = {})
      : LispError(std::move(msg)), dump_(std::move(dump)) {}
  const std::string& dump() const { return dump_; }

 private:
  std::string dump_;
};

/// Shared cancellation token. One per CriRun::run invocation (a fresh
/// token each run keeps aborted runs re-runnable), or constructed
/// standalone by the CLI to bound a whole batch evaluation, or minted
/// per request by the serving layer. Tokens can be *chained*: a run's
/// token with a parent observes the parent's cancellation and deadline
/// too, so a per-request token fired by the daemon (client deadline,
/// graceful drain) aborts exactly the CRI run it admitted.
class CancelState {
 public:
  /// Diagnostic snapshot, captured once at cancel time (not at raise
  /// time: the raiser may be the thread whose state is interesting).
  std::function<std::string()> dump_fn;

  /// Arm an absolute deadline `ms` from now (0 disarms).
  void set_deadline_ms(std::int64_t ms) {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
            ms * 1'000'000,
        std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_expired() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now)
               .count() >= d;
  }

  /// Chain this token under `parent` (nullptr unchains): should_abort
  /// then also observes the parent's flag and deadline, propagating the
  /// parent's reason into this token. The parent is borrowed, not
  /// owned — the caller must guarantee it outlives every poll of this
  /// token (the serving layer's request frame encloses the whole run).
  void set_parent(CancelState* p) {
    parent_.store(p, std::memory_order_release);
  }

  /// This token's cancel reason (empty until fired).
  std::string reason() const {
    std::lock_guard<std::mutex> g(mu_);
    return reason_;
  }

  /// True when a blocked thread should give up: already cancelled, or
  /// past the deadline (in which case this call performs the cancel so
  /// reason/dump get captured exactly once), or a chained parent token
  /// has fired / passed its own deadline.
  bool should_abort() {
    if (cancelled()) return true;
    if (deadline_expired()) {
      cancel("deadline exceeded");
      return true;
    }
    CancelState* p = parent_.load(std::memory_order_acquire);
    if (p != nullptr && p->should_abort()) {
      const std::string why = p->reason();
      cancel(why.empty() ? "cancelled" : why);
      return true;
    }
    return false;
  }

  /// Fire the token: capture reason + dump, then publish the flag.
  /// Idempotent — the first caller wins; later reasons are dropped.
  void cancel(const std::string& why) {
    std::lock_guard<std::mutex> g(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = why;
    if (dump_fn) {
      try {
        dump_ = dump_fn();
      } catch (...) {
        dump_ = "(diagnostic dump failed)";
      }
    }
    // Release-store after the fields are filled: a raise() that sees
    // the flag also sees reason_/dump_ (it re-acquires mu_ anyway, but
    // should_abort()'s lock-free read path relies on the ordering).
    cancelled_.store(true, std::memory_order_release);
  }

  /// Throw the StallError for a fired token. Pre: cancelled().
  [[noreturn]] void raise() {
    std::string why, dump;
    {
      std::lock_guard<std::mutex> g(mu_);
      why = reason_.empty() ? "cancelled" : reason_;
      dump = dump_;
    }
    throw StallError("run aborted: " + why, std::move(dump));
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// steady_clock nanoseconds-since-epoch; 0 = no deadline.
  std::atomic<std::int64_t> deadline_ns_{0};
  /// Chained request-level token (borrowed); see set_parent().
  std::atomic<CancelState*> parent_{nullptr};
  mutable std::mutex mu_;
  std::string reason_;
  std::string dump_;
};

namespace detail {
inline thread_local CancelState* g_current_cancel = nullptr;
}

/// The calling thread's active token, if any. Blocking primitives
/// (LockManager, FuturePool) read this instead of taking a token
/// parameter — the token follows the thread, not the call graph.
inline CancelState* current_cancel() {
  return detail::g_current_cancel;
}

/// RAII installation of a token as the thread's current one. A null
/// token is a no-op scope, so callers can install unconditionally.
class CancelScope {
 public:
  explicit CancelScope(CancelState* tok)
      : prev_(detail::g_current_cancel) {
    if (tok != nullptr) detail::g_current_cancel = tok;
  }
  ~CancelScope() { detail::g_current_cancel = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelState* prev_;
};

/// Throw StallError if the thread's current token has fired (or its
/// deadline has passed). The hot-path cost with no token installed is
/// one thread-local load.
inline void poll_cancellation() {
  CancelState* tok = detail::g_current_cancel;
  if (tok != nullptr && tok->should_abort()) tok->raise();
}

/// Stall detector. One instance per Runtime; the thread starts lazily
/// on the first arm() and exits with the Watchdog. Each armed entry
/// watches a monotone progress counter (completed tasks): if it stops
/// advancing for the stall window, the watchdog cancels the entry's
/// token with a diagnostic reason and bumps cri.stalls.
class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Resolve the cri.stalls counter; call before the first arm().
  void set_recorder(obs::Recorder* rec);

  /// Watch `progress` (monotone) on behalf of `tok`. `progress` runs
  /// on the watchdog thread *with the watchdog mutex held*: it must be
  /// a lock-free read — a relaxed atomic load, nothing that blocks or
  /// takes a lock — or it stalls arm()/disarm() for every run in the
  /// process. Returns an id for disarm().
  std::uint64_t arm(std::shared_ptr<CancelState> tok,
                    std::function<std::uint64_t()> progress,
                    std::chrono::milliseconds stall, std::string label);

  /// Stop watching. Safe to call with an already-fired entry. Blocks
  /// until any in-flight fire of this entry has finished — its dump_fn
  /// may read caller-owned state, so only after disarm() returns may
  /// the caller destroy the watched object.
  void disarm(std::uint64_t id);

  std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t id;
    std::shared_ptr<CancelState> tok;
    std::function<std::uint64_t()> progress;
    std::chrono::milliseconds stall;
    std::string label;
    std::uint64_t last_value;
    std::chrono::steady_clock::time_point last_change;
    bool fired = false;
  };

  void loop();

  std::mutex mu_;
  std::condition_variable cv_;
  /// Signals completion of an out-of-lock fire; disarm() waits on it.
  std::condition_variable fire_cv_;
  std::vector<Entry> entries_;
  /// Ids whose tokens the loop is currently cancelling outside mu_.
  std::vector<std::uint64_t> firing_ids_;
  std::uint64_t next_id_ = 1;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
  std::atomic<std::uint64_t> stalls_{0};
  obs::Counter* stalls_ctr_ = nullptr;
};

}  // namespace curare::runtime
