#include "gc/gc.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "runtime/fault_injector.hpp"
#include "runtime/resource.hpp"

namespace curare::gc {

namespace {

constexpr std::uint64_t kDefaultThreshold = 64ull * 1024 * 1024;

// Heaps a thread-exit hook may still need to reach. Never destroyed:
// thread_local destructors can run during process teardown after static
// destructors would have fired.
struct HeapRegistry {
  std::mutex mu;
  std::unordered_map<std::uint64_t, GcHeap*> live;
};

HeapRegistry& registry() {
  static HeapRegistry* r = new HeapRegistry;
  return *r;
}

std::atomic<std::uint64_t> g_next_heap_id{1};

// Per-thread cache lookup. The direct-mapped `hot` table serves the
// common one-heap-per-process case in a few instructions; `by_heap` is
// the authoritative (still lock-free — thread-local) fallback, so `hot`
// entries can be evicted unconditionally. Entries are keyed by the
// heap's unique id, never reused, so a stale entry for a destroyed heap
// can never be mistaken for a live one.
constexpr std::size_t kTlSlots = 16;

struct TlEntry {
  std::uint64_t heap_id = 0;
  ThreadCache* tc = nullptr;
};

struct TlState {
  TlEntry hot[kTlSlots];
  std::unordered_map<std::uint64_t, ThreadCache*> by_heap;
  ~TlState();
};

thread_local TlState g_tl;

TlState::~TlState() {
  HeapRegistry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  for (const auto& [heap_id, tc] : by_heap) {
    auto it = r.live.find(heap_id);
    if (it != r.live.end()) it->second->retire_cache(tc);
  }
}

void spin_lock(std::atomic<bool>& l) {
  while (l.exchange(true, std::memory_order_acquire))
    std::this_thread::yield();
}

void spin_unlock(std::atomic<bool>& l) {
  l.store(false, std::memory_order_release);
}

GcHeader* header_of(const sexpr::Obj* o) {
  return reinterpret_cast<GcHeader*>(
      reinterpret_cast<char*>(const_cast<sexpr::Obj*>(o)) -
      sizeof(GcHeader));
}

/// Tri-color marker. `visit` claims white cells with a CAS (so parallel
/// markers never trace an object twice) and drains them iteratively —
/// no recursion, so million-cell lists cannot overflow the C++ stack.
class MarkVisitor final : public sexpr::GcVisitor {
 public:
  void visit(sexpr::Value v) override {
    if (!v.is_object()) return;
    sexpr::Obj* o = v.obj();
    GcHeader* h = header_of(o);
    std::uint32_t expect = kCellWhite;
    if (h->state.compare_exchange_strong(expect, kCellBlack,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      stack_.push_back(o);
    }
  }

  bool enter_region(const void* region) override {
    return regions_.insert(region).second;
  }

  void drain() {
    while (!stack_.empty()) {
      const sexpr::Obj* o = stack_.back();
      stack_.pop_back();
      o->gc_trace(*this);
    }
  }

 private:
  std::vector<const sexpr::Obj*> stack_;
  std::unordered_set<const void*> regions_;
};

constexpr std::size_t kMarkChunk = 64;

}  // namespace

// ---- construction ------------------------------------------------------

GcHeap::GcHeap()
    : id_(g_next_heap_id.fetch_add(1, std::memory_order_relaxed)),
      threshold_(kDefaultThreshold) {
  HeapRegistry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  r.live.emplace(id_, this);
}

GcHeap::~GcHeap() {
  {
    HeapRegistry& r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    r.live.erase(id_);
  }
  // Destroy every object still alive. Single-threaded by contract: the
  // embedder tears the Ctx down only after joining all mutators.
  std::lock_guard<std::mutex> bg(blocks_mu_);
  for (auto& b : blocks_) {
    char* p = b->mem.get();
    char* end = p + b->used;
    while (p < end) {
      auto* h = reinterpret_cast<GcHeader*>(p);
      if (h->state.load(std::memory_order_relaxed) != kCellFree)
        reinterpret_cast<sexpr::Obj*>(p + sizeof(GcHeader))->~Obj();
      p += h->size;
    }
  }
}

// ---- thread caches -----------------------------------------------------

ThreadCache& GcHeap::cache() {
  TlEntry& e = g_tl.hot[id_ % kTlSlots];
  if (e.heap_id == id_) return *e.tc;
  return *cache_slow();
}

ThreadCache* GcHeap::cache_slow() {
  ThreadCache* tc;
  auto it = g_tl.by_heap.find(id_);
  if (it != g_tl.by_heap.end()) {
    tc = it->second;
  } else {
    std::lock_guard<std::mutex> g(cache_mu_);
    caches_.push_back(std::make_unique<ThreadCache>());
    tc = caches_.back().get();
    g_tl.by_heap.emplace(id_, tc);
  }
  g_tl.hot[id_ % kTlSlots] = TlEntry{id_, tc};
  return tc;
}

void GcHeap::retire_cache(ThreadCache* tc) {
  // Thread-exit hook (runs under the registry lock). The thread will
  // never allocate again; release its block so a future sweep can
  // recycle it once the block's cells die. The cache itself survives —
  // its counters still back live_objects().
  std::lock_guard<std::mutex> g(cache_mu_);
  tc->retired = true;
  if (tc->block) {
    tc->block->owner.store(nullptr, std::memory_order_release);
    tc->block = nullptr;
  }
}

// ---- allocation --------------------------------------------------------

GcHeap::AllocCell GcHeap::allocate(std::size_t payload_size) {
  // Fault site: an injected throw exercises every allocation path's
  // unwind (make() keeps the unsafe region balanced; callers see a
  // LispError like any other body failure). Header-only hook — gc
  // stays link-independent of the runtime library.
  runtime::FaultInjector::instance().check(
      runtime::FaultInjector::Site::kGcAlloc);
  std::size_t cell = sizeof(GcHeader) + payload_size;
  cell = (cell + (kCellAlign - 1)) & ~(kCellAlign - 1);

  // Resource governance (DESIGN.md §14), checked before the cell is
  // carved so a throw leaves nothing half-built — the same unwind
  // contract the fault-injection site above already proves: make()
  // balances the unsafe region and no counter was bumped.
  runtime::charge_allocation(cell);
  const std::uint64_t hard = hard_limit_.load(std::memory_order_relaxed);
  if (hard != 0 &&
      used_bytes_.load(std::memory_order_relaxed) + cell > hard) {
    // Fail this allocation instead of growing toward the OS OOM
    // killer, and arm a collection so the pressure can recede at the
    // next quiescent point.
    gc_requested_.store(true, std::memory_order_release);
    throw runtime::ResourceExhausted(
        runtime::ResourceExhausted::Kind::kHeapHard,
        "heap hard watermark: " +
            std::to_string(used_bytes_.load(std::memory_order_relaxed)) +
            " byte(s) in use, limit " + std::to_string(hard));
  }

  ThreadCache& tc = cache();
  char* p;
  if (cell > kBlockSize) {
    // Oversized: a dedicated block, never bump-shared, reclaimed whole.
    std::lock_guard<std::mutex> g(blocks_mu_);
    blocks_.push_back(std::make_unique<Block>(cell));
    Block* b = blocks_.back().get();
    b->used = cell;
    heap_bytes_ += cell;
    bytes_since_gc_ += cell;
    const std::uint64_t thr = threshold_.load(std::memory_order_relaxed);
    if (thr != 0 && bytes_since_gc_ >= thr)
      gc_requested_.store(true, std::memory_order_release);
    note_used_bytes(cell);
    p = b->mem.get();
  } else {
    Block* b = tc.block;
    if (b == nullptr || b->capacity - b->used < cell) {
      refill(tc, cell);
      b = tc.block;
    }
    p = b->mem.get() + b->used;
    b->used += cell;
  }

  auto* h = new (p) GcHeader;
  h->size = static_cast<std::uint32_t>(cell);
  h->state.store(kCellFree, std::memory_order_relaxed);
  return {h, p + sizeof(GcHeader), &tc};
}

void GcHeap::refill(ThreadCache& tc, std::size_t /*cell_size*/) {
  std::lock_guard<std::mutex> g(blocks_mu_);
  if (tc.block) {
    // Exhausted block: disown it. It stays in blocks_; its cells are
    // reclaimed individually by sweeps and the block itself recycles
    // once fully dead.
    tc.block->owner.store(nullptr, std::memory_order_release);
    tc.block = nullptr;
  }
  Block* b;
  if (!free_blocks_.empty()) {
    b = free_blocks_.back();
    free_blocks_.pop_back();
  } else {
    blocks_.push_back(std::make_unique<Block>(kBlockSize));
    b = blocks_.back().get();
    heap_bytes_ += kBlockSize;
  }
  b->owner.store(&tc, std::memory_order_release);
  tc.block = b;
  bytes_since_gc_ += kBlockSize;
  const std::uint64_t thr = threshold_.load(std::memory_order_relaxed);
  if (thr != 0 && bytes_since_gc_ >= thr)
    gc_requested_.store(true, std::memory_order_release);
  // Block-granular growth is good enough for the watermark estimate:
  // the whole block is about to be carved into cells.
  note_used_bytes(kBlockSize);
}

std::size_t GcHeap::reserve_blocks(std::size_t bytes) {
  const std::size_t want = (bytes + kBlockSize - 1) / kBlockSize;
  std::lock_guard<std::mutex> g(blocks_mu_);
  std::size_t added = 0;
  // Top up rather than always grow: blocks parked by earlier sweeps
  // count toward the reservation.
  while (free_blocks_.size() < want) {
    blocks_.push_back(std::make_unique<Block>(kBlockSize));
    free_blocks_.push_back(blocks_.back().get());
    heap_bytes_ += kBlockSize;
    ++added;
  }
  return added;
}

// ---- counters ----------------------------------------------------------

std::uint64_t GcHeap::live_objects() const {
  std::uint64_t n = 0;
  {
    std::lock_guard<std::mutex> g(cache_mu_);
    for (const auto& tc : caches_)
      n += tc->alloc_objects.load(std::memory_order_relaxed);
  }
  return n - freed_objects_.load(std::memory_order_relaxed);
}

std::uint64_t GcHeap::live_bytes() const {
  std::uint64_t n = 0;
  {
    std::lock_guard<std::mutex> g(cache_mu_);
    for (const auto& tc : caches_)
      n += tc->alloc_bytes.load(std::memory_order_relaxed);
  }
  return n - freed_bytes_.load(std::memory_order_relaxed);
}

GcStats GcHeap::stats() const {
  GcStats s;
  {
    std::lock_guard<std::mutex> g(sp_mu_);
    s = stats_;
  }
  s.reclaimed_objects = freed_objects_.load(std::memory_order_relaxed);
  s.reclaimed_bytes = freed_bytes_.load(std::memory_order_relaxed);
  s.live_objects = live_objects();
  s.live_bytes = live_bytes();
  {
    std::lock_guard<std::mutex> g(blocks_mu_);
    s.heap_bytes = heap_bytes_;
    s.total_blocks = blocks_.size();
    s.free_blocks = free_blocks_.size();
  }
  return s;
}

// ---- root sources ------------------------------------------------------

void GcHeap::add_root_source(RootSource* s) {
  std::lock_guard<std::mutex> g(roots_mu_);
  sources_.push_back(s);
}

void GcHeap::remove_root_source(RootSource* s) {
  std::lock_guard<std::mutex> g(roots_mu_);
  sources_.erase(std::remove(sources_.begin(), sources_.end(), s),
                 sources_.end());
}

void GcHeap::set_pause_callback(std::function<void(const GcPause&)> cb) {
  std::lock_guard<std::mutex> g(cb_mu_);
  pause_cb_ = std::move(cb);
}

// ---- safepoints --------------------------------------------------------

void GcHeap::enter_unsafe() {
  ThreadCache& tc = cache();
  if (tc.unsafe_depth++ != 0) return;
  for (;;) {
    unsafe_.fetch_add(1, std::memory_order_seq_cst);
    if (!gc_stw_.load(std::memory_order_seq_cst)) return;
    // A stop-the-world window is open (or opening): back out, wake the
    // collector, park until the collection ends, retry. The seq_cst
    // pairing with the collector's stw-store/unsafe-load guarantees at
    // least one side observes the other, so a thread can never run
    // unsafe during a window the collector believes is quiescent.
    unsafe_.fetch_sub(1, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> sp(sp_mu_);
    collector_cv_.notify_one();
    if (gc_active_.load(std::memory_order_seq_cst))
      wait_for_gc_end_helping(sp);
  }
}

void GcHeap::exit_unsafe() {
  ThreadCache& tc = cache();
  if (--tc.unsafe_depth != 0) return;
  unsafe_.fetch_sub(1, std::memory_order_seq_cst);
  if (gc_active_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> sp(sp_mu_);
    collector_cv_.notify_one();
  }
}

std::size_t GcHeap::blocking_release() {
  ThreadCache& tc = cache();
  const std::size_t d = tc.unsafe_depth;
  if (d == 0) return 0;
  tc.unsafe_depth = 0;
  unsafe_.fetch_sub(1, std::memory_order_seq_cst);
  if (gc_active_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> sp(sp_mu_);
    collector_cv_.notify_one();
  }
  return d;
}

void GcHeap::blocking_reacquire(std::size_t depth) {
  if (depth == 0) return;
  enter_unsafe();  // waits out any stop-the-world in progress
  cache().unsafe_depth = depth;
}

bool GcHeap::in_unsafe_region() { return cache().unsafe_depth != 0; }

void GcHeap::wait_for_gc_end_helping(std::unique_lock<std::mutex>& sp) {
  while (gc_active_.load(std::memory_order_seq_cst)) {
    if (mark_phase_.load(std::memory_order_seq_cst) == 1) {
      sp.unlock();
      while (try_help_mark()) {
      }
      sp.lock();
      continue;
    }
    // Short timeout so parked threads notice the mark phase promptly.
    sp_cv_.wait_for(sp, std::chrono::milliseconds(1));
  }
}

// ---- collection --------------------------------------------------------

bool GcHeap::maybe_collect() {
  if (gc_active_.load(std::memory_order_seq_cst)) {
    // Join a collection somebody else started.
    if (cache().unsafe_depth != 0) return false;
    std::unique_lock<std::mutex> sp(sp_mu_);
    if (!gc_active_.load(std::memory_order_seq_cst)) return false;
    wait_for_gc_end_helping(sp);
    return true;
  }
  if (!gc_requested_.load(std::memory_order_acquire)) return false;
  collect("threshold");
  return true;
}

std::uint64_t GcHeap::collect(const char* reason) {
  if (cache().unsafe_depth != 0) {
    // Not a quiescent point for this thread: arm the next one instead.
    request_collection();
    return 0;
  }
  std::unique_lock<std::mutex> sp(sp_mu_);
  if (gc_active_.load(std::memory_order_seq_cst)) {
    wait_for_gc_end_helping(sp);
    return 0;
  }
  return collect_locked(reason, sp);
}

std::uint64_t GcHeap::collect_locked(const char* reason,
                                     std::unique_lock<std::mutex>& sp) {
  gc_active_.store(true, std::memory_order_seq_cst);
  gc_requested_.store(false, std::memory_order_relaxed);

  // Phase A: wait for running mutators to reach quiescent points. New
  // unsafe entries are still admitted — required so a thread blocked
  // unsafe on a future lets the worker that resolves it proceed.
  collector_cv_.wait(sp, [&] {
    return unsafe_.load(std::memory_order_seq_cst) == 0;
  });
  // Phase B: raise the fence and re-drain the entries that slipped in
  // between our count read and the fence store (Dekker, see header).
  gc_stw_.store(true, std::memory_order_seq_cst);
  collector_cv_.wait(sp, [&] {
    return unsafe_.load(std::memory_order_seq_cst) == 0;
  });
  sp.unlock();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<sexpr::Value> roots;
  gather_roots(roots);
  mark(roots);
  std::uint64_t swept_objects = 0;
  std::uint64_t swept_bytes = 0;
  sweep(swept_objects, swept_bytes);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t pause_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count());

  freed_objects_.fetch_add(swept_objects, std::memory_order_relaxed);
  freed_bytes_.fetch_add(swept_bytes, std::memory_order_relaxed);

  GcPause p;
  p.pause_ns = pause_ns;
  p.reclaimed_objects = swept_objects;
  p.reclaimed_bytes = swept_bytes;
  p.live_objects = live_objects();
  p.reason = reason;
  // Re-base the watermark estimate to what actually survived: the
  // soft/hard checks measure live + growth-since-GC, so pressure
  // recedes when a collection reclaims.
  used_bytes_.store(live_bytes(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> bg(blocks_mu_);
    p.heap_bytes = heap_bytes_;
  }

  sp.lock();
  stats_.collections += 1;
  stats_.last_pause_ns = pause_ns;
  stats_.total_pause_ns += pause_ns;
  stats_.max_pause_ns = std::max(stats_.max_pause_ns, pause_ns);
  p.collections = stats_.collections;
  gc_stw_.store(false, std::memory_order_seq_cst);
  gc_active_.store(false, std::memory_order_seq_cst);
  sp.unlock();
  sp_cv_.notify_all();

  std::function<void(const GcPause&)> cb;
  {
    std::lock_guard<std::mutex> g(cb_mu_);
    cb = pause_cb_;
  }
  if (cb) cb(p);
  return swept_bytes;
}

namespace {
/// Adapter that funnels StackRoots::trace output into the root vector;
/// regions dedup shared Env chains across frames.
class GatherVisitor final : public sexpr::GcVisitor {
 public:
  explicit GatherVisitor(std::vector<sexpr::Value>& out) : out_(out) {}
  void visit(sexpr::Value v) override {
    if (v.is_object()) out_.push_back(v);
  }
  bool enter_region(const void* region) override {
    return regions_.insert(region).second;
  }

 private:
  std::vector<sexpr::Value>& out_;
  std::unordered_set<const void*> regions_;
};
}  // namespace

void GcHeap::gather_roots(std::vector<sexpr::Value>& out) {
  {
    std::lock_guard<std::mutex> g(roots_mu_);
    for (RootSource* s : sources_) s->gc_roots(out);
  }
  std::lock_guard<std::mutex> g(cache_mu_);
  GatherVisitor gv(out);
  for (const auto& tc : caches_) {
    spin_lock(tc->roots_lock);
    for (RootScope* r = tc->roots_head; r != nullptr; r = r->prev_)
      out.insert(out.end(), r->vals_.begin(), r->vals_.end());
    spin_unlock(tc->roots_lock);
    for (StackRoots* f = tc->frames_head; f != nullptr; f = f->prev_)
      f->trace(gv);
  }
}

void GcHeap::mark(const std::vector<sexpr::Value>& roots) {
  if (roots.size() <= 2 * kMarkChunk) {
    MarkVisitor v;
    for (sexpr::Value r : roots) v.visit(r);
    v.drain();
    return;
  }
  // Fan out: publish the chunked root array, open the mark phase, and
  // process chunks alongside any threads parked at the fence.
  total_chunks_ = (roots.size() + kMarkChunk - 1) / kMarkChunk;
  mark_roots_ = &roots;
  next_chunk_.store(0, std::memory_order_relaxed);
  chunks_done_.store(0, std::memory_order_relaxed);
  mark_phase_.store(1, std::memory_order_seq_cst);
  while (try_help_mark()) {
  }
  while (chunks_done_.load(std::memory_order_seq_cst) < total_chunks_)
    std::this_thread::yield();
  mark_phase_.store(0, std::memory_order_seq_cst);
  // Wait out helpers mid-claim before the roots vector dies. A helper
  // that read phase==1 registered in helpers_ first (seq_cst total
  // order), so this wait cannot miss it.
  while (helpers_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  mark_roots_ = nullptr;
}

bool GcHeap::try_help_mark() {
  helpers_.fetch_add(1, std::memory_order_seq_cst);
  bool did = false;
  if (mark_phase_.load(std::memory_order_seq_cst) == 1) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk < total_chunks_) {
      const std::vector<sexpr::Value>& roots = *mark_roots_;
      const std::size_t lo = chunk * kMarkChunk;
      const std::size_t hi = std::min(roots.size(), lo + kMarkChunk);
      MarkVisitor v;
      for (std::size_t i = lo; i < hi; ++i) v.visit(roots[i]);
      v.drain();
      chunks_done_.fetch_add(1, std::memory_order_seq_cst);
      did = true;
    }
  }
  helpers_.fetch_sub(1, std::memory_order_seq_cst);
  return did;
}

void GcHeap::sweep(std::uint64_t& objects, std::uint64_t& bytes) {
  std::lock_guard<std::mutex> g(blocks_mu_);
  for (std::size_t i = 0; i < blocks_.size();) {
    Block& b = *blocks_[i];
    if (b.used == 0) {
      ++i;
      continue;
    }
    char* p = b.mem.get();
    char* end = p + b.used;
    std::size_t live = 0;
    while (p < end) {
      auto* h = reinterpret_cast<GcHeader*>(p);
      const std::uint32_t sz = h->size;
      const std::uint32_t st = h->state.load(std::memory_order_relaxed);
      if (st == kCellBlack) {
        h->state.store(kCellWhite, std::memory_order_relaxed);
        ++live;
      } else if (st == kCellWhite) {
        reinterpret_cast<sexpr::Obj*>(p + sizeof(GcHeader))->~Obj();
        h->state.store(kCellFree, std::memory_order_relaxed);
        ++objects;
        bytes += sz;
      }
      p += sz;
    }
    if (live == 0) {
      if (b.oversized) {
        heap_bytes_ -= b.capacity;
        blocks_.erase(blocks_.begin() +
                      static_cast<std::ptrdiff_t>(i));
        continue;
      }
      b.used = 0;
      if (b.owner.load(std::memory_order_acquire) == nullptr)
        free_blocks_.push_back(&b);
    }
    ++i;
  }
  bytes_since_gc_ = 0;
}

// ---- RootScope ---------------------------------------------------------

StackRoots::StackRoots(GcHeap& h) : tc_(&h.cache()) {
  prev_ = tc_->frames_head;
  tc_->frames_head = this;
}

StackRoots::~StackRoots() { tc_->frames_head = prev_; }

RootScope::RootScope(GcHeap& h) : heap_(h), tc_(&h.cache()) {
  spin_lock(tc_->roots_lock);
  prev_ = tc_->roots_head;
  tc_->roots_head = this;
  spin_unlock(tc_->roots_lock);
}

RootScope::~RootScope() {
  spin_lock(tc_->roots_lock);
  RootScope** p = &tc_->roots_head;
  while (*p != nullptr && *p != this) p = &(*p)->prev_;
  if (*p != nullptr) *p = prev_;
  spin_unlock(tc_->roots_lock);
}

void RootScope::add(sexpr::Value v) {
  spin_lock(tc_->roots_lock);
  vals_.push_back(v);
  spin_unlock(tc_->roots_lock);
}

void RootScope::clear() {
  spin_lock(tc_->roots_lock);
  vals_.clear();
  spin_unlock(tc_->roots_lock);
}

}  // namespace curare::gc
