// Memory management for the sexpr heap: per-thread bump allocation plus
// a stop-the-world parallel mark-sweep collector that runs only at
// quiescent points.
//
// Allocation. Each mutator thread owns a 64 KiB bump block per heap and
// carves 8-byte-aligned cells out of it with two additions — no lock,
// no atomic RMW on shared state. The global block list (protected by a
// mutex) is touched only on refill, roughly once per ~1360 conses, so
// the serialized section per allocation is ~1/1000th of the seed's
// lock-the-shard-and-push design. Exact live-object/live-byte counts
// are maintained as per-cache relaxed counters summed on demand.
//
// Collection. The collector never interrupts running Lisp. Mutators
// bracket every region that holds unrooted Values on the C++ stack in a
// MutatorScope ("unsafe region"); collections start only from explicit
// maybe_collect()/collect() calls placed at quiescent points — between
// CRI tasks in CriRun::serve, between future-pool tasks, between
// top-level forms in eval_program and the REPL/CLI loops. Because no
// Lisp frame is live across those points, the root set is exactly the
// registered RootSources (global Env, future slots, queued task args,
// …) plus explicit RootScopes — no stack scanning, no conservatism.
//
// Stopping the world is two-phase. Phase A: the collector claims the
// heap (gc_active_) and waits for the unsafe count to drain; new unsafe
// entries are still admitted, which keeps help-first futures live: a
// thread blocked inside an unsafe region waiting on a future must allow
// the worker that resolves it to enter its own unsafe region. Phase B:
// once the count first reaches zero the collector raises gc_stw_ and
// re-waits; from here new entries bounce and park (Dekker-style
// seq_cst handshake on unsafe_/gc_stw_ — at least one side always sees
// the other). Parked threads help with marking. Blocking waits inside
// unsafe regions (scheduler sleeps) release their unsafe count around
// the wait via blocking_release/blocking_reacquire — safe because the
// values they will consume on wake are still reachable from the queues.
//
// Marking fans root chunks out across whoever is parked at the fence
// (server-pool threads included) plus the collector; claims are a
// single fetch_add. Sweeping walks blocks linearly, runs destructors on
// white cells, and returns fully-dead blocks to the free list.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sexpr/value.hpp"

namespace curare::gc {

class GcHeap;

/// Per-cell header, 8 bytes so payloads stay 8-aligned (all a tagged
/// Value needs: bit 0 clear). `size` is the full cell (header
/// included); `state` is the tri-color word.
struct GcHeader {
  std::uint32_t size;
  std::atomic<std::uint32_t> state;
};

inline constexpr std::uint32_t kCellFree = 0;   ///< dead, dtor already run
inline constexpr std::uint32_t kCellWhite = 1;  ///< live, not yet marked
inline constexpr std::uint32_t kCellBlack = 2;  ///< marked this cycle

inline constexpr std::size_t kCellAlign = 8;
inline constexpr std::size_t kBlockSize = 64 * 1024;

static_assert(sizeof(GcHeader) == 8, "payloads must stay 8-aligned");

/// A bump region. `used` is written only by the owning thread (while the
/// block is owned) or the collector (while the world is stopped); the
/// safepoint handshake orders those accesses.
struct Block {
  explicit Block(std::size_t cap)
      : mem(new char[cap]), capacity(cap), oversized(cap != kBlockSize) {}

  std::unique_ptr<char[]> mem;
  std::size_t capacity;
  std::size_t used = 0;
  bool oversized;
  /// Owning ThreadCache, null when parked in the heap's lists. Atomic so
  /// thread-exit retirement can clear it without racing the sweep.
  std::atomic<void*> owner{nullptr};
};

class RootScope;
class StackRoots;

/// Per-(heap × thread) allocation state. Stable address for the
/// thread's lifetime; retired (returned to the heap) at thread exit.
struct ThreadCache {
  Block* block = nullptr;        ///< current bump block, owner == this
  std::size_t unsafe_depth = 0;  ///< MutatorScope nesting on this thread
  bool retired = false;          ///< owning thread has exited

  std::atomic<std::uint64_t> alloc_objects{0};
  std::atomic<std::uint64_t> alloc_bytes{0};

  /// Intrusive stack of live RootScopes, guarded by a spinlock because
  /// the collector reads it while the owning thread may push/pop.
  std::atomic<bool> roots_lock{false};
  RootScope* roots_head = nullptr;

  /// Intrusive stack of live StackRoots frames. Unlike RootScopes,
  /// frames are pushed/popped only inside unsafe regions, so the
  /// stop-the-world protocol itself orders them against the collector's
  /// walk — no lock.
  StackRoots* frames_head = nullptr;
};

/// Anything that can contribute roots: the global environment, the
/// future pool, pending task queues, the symbol table. Sources are
/// enumerated only while the world is stopped, but registration may
/// happen at any time.
class RootSource {
 public:
  virtual ~RootSource() = default;
  /// Append every Value reachable from this source to `out`.
  virtual void gc_roots(std::vector<sexpr::Value>& out) = 0;
};

/// Aggregate statistics; all-time totals plus current heap shape.
struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t last_pause_ns = 0;
  std::uint64_t total_pause_ns = 0;
  std::uint64_t max_pause_ns = 0;
  std::uint64_t reclaimed_objects = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::uint64_t live_objects = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t heap_bytes = 0;  ///< capacity of all blocks owned
  std::uint64_t total_blocks = 0;
  std::uint64_t free_blocks = 0;
};

/// One collection, as reported to the pause callback (which feeds the
/// obs layer: cri.gc.* metrics and tracer pause spans).
struct GcPause {
  std::uint64_t pause_ns = 0;
  std::uint64_t reclaimed_objects = 0;
  std::uint64_t reclaimed_bytes = 0;
  std::uint64_t live_objects = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t collections = 0;  ///< ordinal of this collection
  const char* reason = "";        ///< "threshold", "explicit", ...
};

class GcHeap {
 public:
  GcHeap();
  ~GcHeap();
  GcHeap(const GcHeap&) = delete;
  GcHeap& operator=(const GcHeap&) = delete;

  /// Allocate and construct a heap object. Lock-free unless the current
  /// block is full. Safe from any thread; implies a MutatorScope for the
  /// duration of construction, so a collection can never run between
  /// cell carve-out and the constructor finishing.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_base_of_v<sexpr::Obj, T>,
                  "GcHeap only manages sexpr::Obj subclasses");
    static_assert(alignof(T) <= kCellAlign, "cell alignment is 8");
    enter_unsafe();
    AllocCell c;
    T* obj;
    try {
      // allocate() can throw too (bad_alloc, injected gc.alloc fault);
      // it must not leak the unsafe region or the thread could never
      // be stopped again.
      c = allocate(sizeof(T));
      obj = new (c.payload) T(std::forward<Args>(args)...);
    } catch (...) {
      // Cell (if carved) stays kCellFree: sweep skips it, the block
      // reclaims it when fully dead. Counters were never bumped.
      exit_unsafe();
      throw;
    }
    c.header->state.store(kCellWhite, std::memory_order_release);
    c.tc->alloc_objects.fetch_add(1, std::memory_order_relaxed);
    c.tc->alloc_bytes.fetch_add(c.header->size, std::memory_order_relaxed);
    exit_unsafe();
    return obj;
  }

  /// Exact counts (sum of per-cache counters minus sweep totals). Exact
  /// whenever no allocation is concurrently in flight — in particular
  /// after joining worker threads, and always at quiescent points.
  std::uint64_t live_objects() const;
  std::uint64_t live_bytes() const;

  /// Collection trigger: bytes allocated since the last collection that
  /// arm the next maybe_collect(). 0 disables automatic triggering
  /// (explicit collect() still works). Default 64 MiB.
  void set_threshold(std::uint64_t bytes) {
    threshold_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  /// Arm a collection at the next quiescent point regardless of the
  /// threshold.
  void request_collection() {
    gc_requested_.store(true, std::memory_order_release);
  }

  /// Heap high-watermarks (DESIGN.md §14). Crossing `soft` raises GC
  /// urgency (a collection is armed on every further growth) and lets
  /// the serving layer shed admissions; crossing `hard` makes
  /// allocations fail with runtime::ResourceExhausted instead of
  /// growing toward the OS OOM killer. 0 disables either threshold.
  /// The measure is used_bytes_estimate(): live bytes after the last
  /// collection plus block-granular growth since — it recedes when a
  /// collection reclaims, unlike the monotone block-capacity total.
  void set_heap_limits(std::uint64_t soft, std::uint64_t hard) {
    soft_limit_.store(soft, std::memory_order_relaxed);
    hard_limit_.store(hard, std::memory_order_relaxed);
  }
  std::uint64_t soft_limit() const {
    return soft_limit_.load(std::memory_order_relaxed);
  }
  std::uint64_t hard_limit() const {
    return hard_limit_.load(std::memory_order_relaxed);
  }

  /// Approximate bytes in use: live bytes at the end of the last
  /// collection plus bytes handed to bump blocks (64 KiB granules) and
  /// oversized cells since. One relaxed load — cheap enough for the
  /// admission path to consult per request.
  std::uint64_t used_bytes_estimate() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }

  /// True while the soft watermark is armed and exceeded — the signal
  /// the admission controller sheds on.
  bool above_soft_watermark() const {
    const std::uint64_t soft = soft_limit_.load(std::memory_order_relaxed);
    return soft != 0 &&
           used_bytes_.load(std::memory_order_relaxed) >= soft;
  }

  /// Bulk-allocation warm-up: grow the free-block list so that the next
  /// `bytes` of bump allocation refill from pre-built blocks instead of
  /// taking one heap-growth path per 64 KiB. One lock acquisition for
  /// the whole reservation; the image cloner calls this before
  /// materializing a session so the clone is (almost) pure bump+memcpy.
  /// Returns the number of blocks added.
  std::size_t reserve_blocks(std::size_t bytes);

  /// Quiescent point: collect if armed (threshold crossed or requested),
  /// or join a collection already in progress. Must be called with no
  /// unrooted Values held on the C++ stack. Returns true if this call
  /// performed or joined a collection.
  bool maybe_collect();

  /// Unconditional collection at a quiescent point. If another thread
  /// is already collecting, waits for (and helps) that collection
  /// instead of starting a second one. Called from inside an unsafe
  /// region it cannot stop the world, so it only arms the next
  /// quiescent point. Returns reclaimed bytes (0 when deferred/joined).
  std::uint64_t collect(const char* reason = "explicit");

  GcStats stats() const;

  void add_root_source(RootSource* s);
  void remove_root_source(RootSource* s);

  /// Invoked after every collection (outside all GC locks). Replaces
  /// any previous callback; pass nullptr to clear.
  void set_pause_callback(std::function<void(const GcPause&)> cb);

  // -- safepoint protocol (used via MutatorScope; exposed for the
  //    scheduler's blocking waits and for tests) -----------------------

  /// Enter an unsafe region: Values on the C++ stack are protected from
  /// collection until the matching exit_unsafe. Reentrant per thread.
  /// Blocks only while a stop-the-world phase is in progress.
  void enter_unsafe();
  void exit_unsafe();

  /// Fully release this thread's unsafe region (all nesting levels)
  /// before a blocking wait whose wake-up values are queue-rooted.
  /// Returns the depth to restore; 0 means the thread was already safe.
  std::size_t blocking_release();
  /// Restore the depth saved by blocking_release, waiting out any
  /// stop-the-world phase in progress. Call with no locks held.
  void blocking_reacquire(std::size_t depth);

  /// True if the calling thread is inside an unsafe region of this heap.
  bool in_unsafe_region();

  /// Internal: thread-exit hook, reached via the live-heap registry.
  /// Marks the cache retired and releases its bump block for recycling.
  void retire_cache(ThreadCache* tc);

 private:
  friend class RootScope;
  friend class StackRoots;
  struct AllocCell {
    GcHeader* header = nullptr;
    void* payload = nullptr;
    ThreadCache* tc = nullptr;
  };

  AllocCell allocate(std::size_t payload_size);
  ThreadCache& cache();
  ThreadCache* cache_slow();
  void refill(ThreadCache& tc, std::size_t cell_size);

  /// Record heap growth for the watermark estimate; arms a collection
  /// once the soft threshold is crossed (GC urgency under pressure).
  void note_used_bytes(std::uint64_t add) {
    const std::uint64_t used =
        used_bytes_.fetch_add(add, std::memory_order_relaxed) + add;
    const std::uint64_t soft = soft_limit_.load(std::memory_order_relaxed);
    if (soft != 0 && used >= soft)
      gc_requested_.store(true, std::memory_order_release);
  }

  std::uint64_t collect_locked(const char* reason,
                               std::unique_lock<std::mutex>& sp);
  void collect_impl(const char* reason);
  void gather_roots(std::vector<sexpr::Value>& out);
  void mark(const std::vector<sexpr::Value>& roots);
  bool try_help_mark();
  void sweep(std::uint64_t& objects, std::uint64_t& bytes);
  void wait_for_gc_end_helping(std::unique_lock<std::mutex>& sp);

  const std::uint64_t id_;  ///< key into the thread-local cache table

  // Blocks.
  mutable std::mutex blocks_mu_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<Block*> free_blocks_;
  std::uint64_t heap_bytes_ = 0;
  std::uint64_t bytes_since_gc_ = 0;  ///< bumped on refill, under blocks_mu_

  // Thread caches.
  mutable std::mutex cache_mu_;
  std::vector<std::unique_ptr<ThreadCache>> caches_;
  std::unordered_map<std::thread::id, ThreadCache*> cache_map_;

  // Safepoint state. unsafe_ counts threads inside unsafe regions;
  // gc_active_ marks a claimed collection (phase A: drain, entries
  // admitted); gc_stw_ marks the stop-the-world window (phase B:
  // entries bounce). seq_cst on unsafe_/gc_stw_ carries the Dekker
  // argument in the header comment.
  std::atomic<int> unsafe_{0};
  std::atomic<bool> gc_requested_{false};
  std::atomic<bool> gc_active_{false};
  std::atomic<bool> gc_stw_{false};
  mutable std::mutex sp_mu_;
  std::condition_variable sp_cv_;         ///< mutators await GC end
  std::condition_variable collector_cv_;  ///< collector awaits drain

  // Parallel-mark work sharing. The collector publishes roots/chunks,
  // flips mark_phase_ to 1 (release), and parked threads claim chunks
  // via next_chunk_. helpers_ lets the collector wait out stragglers
  // before the roots vector dies.
  std::atomic<int> mark_phase_{0};
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> chunks_done_{0};
  std::atomic<int> helpers_{0};
  const std::vector<sexpr::Value>* mark_roots_ = nullptr;
  std::size_t total_chunks_ = 0;

  // Totals (sweep-side, written only by the collector).
  std::atomic<std::uint64_t> freed_objects_{0};
  std::atomic<std::uint64_t> freed_bytes_{0};
  std::atomic<std::uint64_t> threshold_;

  // High-watermark state (see set_heap_limits). used_bytes_ is the
  // lock-free mirror the allocator's hard check and the admission
  // path's soft check read; the collector re-bases it to live bytes
  // after every sweep.
  std::atomic<std::uint64_t> soft_limit_{0};
  std::atomic<std::uint64_t> hard_limit_{0};
  std::atomic<std::uint64_t> used_bytes_{0};

  GcStats stats_{};  ///< collection fields; guarded by sp_mu_

  mutable std::mutex roots_mu_;
  std::vector<RootSource*> sources_;

  std::mutex cb_mu_;
  std::function<void(const GcPause&)> pause_cb_;
};

/// RAII unsafe region: hold one across any C++ code that keeps Values
/// live only on the stack (eval, apply, task bodies, reader calls).
class MutatorScope {
 public:
  explicit MutatorScope(GcHeap& h) : heap_(h) { heap_.enter_unsafe(); }
  ~MutatorScope() { heap_.exit_unsafe(); }
  MutatorScope(const MutatorScope&) = delete;
  MutatorScope& operator=(const MutatorScope&) = delete;

 private:
  GcHeap& heap_;
};

/// Explicit roots for C++ embedders: Values added here survive
/// collections for the scope's lifetime. Add values while inside a
/// MutatorScope (or otherwise before any collection can observe them);
/// the scope itself may outlive the MutatorScope that populated it.
class RootScope {
 public:
  explicit RootScope(GcHeap& h);
  ~RootScope();
  RootScope(const RootScope&) = delete;
  RootScope& operator=(const RootScope&) = delete;

  void add(sexpr::Value v);
  void clear();

 private:
  friend class GcHeap;
  GcHeap& heap_;
  ThreadCache* tc_;
  RootScope* prev_;
  std::vector<sexpr::Value> vals_;
};

/// A precise shadow-stack frame: registers a trace callback for Values
/// this C++ frame holds (an eval frame's environment, an in-flight
/// argument vector). The collector invokes trace() at collection time,
/// so mutations of the underlying storage between collections are seen
/// — unlike RootScope, which copies values at add() time.
///
/// Contract: construct and destroy only inside an unsafe region (under
/// a MutatorScope). That makes push/pop mutually exclusive with the
/// collector's walk by the stop-the-world protocol itself, so the
/// per-thread chain needs no lock. Frames let a thread release its
/// unsafe region across a long block (CriRun::run joining its servers)
/// while everything its suspended Lisp frames hold stays rooted.
class StackRoots {
 public:
  explicit StackRoots(GcHeap& h);
  virtual ~StackRoots();
  StackRoots(const StackRoots&) = delete;
  StackRoots& operator=(const StackRoots&) = delete;

  /// Report every Value this frame holds. World stopped; the owning
  /// thread is parked or blocked, so its storage is stable.
  virtual void trace(sexpr::GcVisitor& g) const = 0;

 private:
  friend class GcHeap;
  ThreadCache* tc_;
  StackRoots* prev_;
};

}  // namespace curare::gc
