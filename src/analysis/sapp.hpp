// Single Access Path Property verifier (paper §2.1).
//
// "An instance of a structure I has the single access path property
// (SAPP) if there exists only one canonical path to any instance in
// accessible(I). In effect, this property requires that instances form a
// tree rather than a general graph. We are measuring how often this
// occurs in Lisp programs."
//
// The static analysis *assumes* SAPP from a declaration; this runtime
// check lets programs (and our tests/benches) measure whether the
// assumption holds on real data, exactly the measurement the paper says
// it is undertaking. For plain cons structures no canonicalization is
// needed, so SAPP is: no cons cell reachable along two different paths
// (shared substructure) and no cycles.
#pragma once

#include <cstddef>
#include <string>

#include "sexpr/value.hpp"

namespace curare::analysis {

struct SappResult {
  bool holds = true;
  std::size_t cells = 0;        ///< cons cells visited
  sexpr::Value witness;          ///< first doubly-reachable cell, if any
  std::string violation;         ///< empty when holds

  explicit operator bool() const { return holds; }
};

/// Check whether the cons structure reachable from `root` is a tree.
/// Atoms (symbols, numbers, strings) are identity-shared by design and
/// do not violate SAPP. Runs in O(cells) time and space.
SappResult check_sapp(sexpr::Value root);

}  // namespace curare::analysis
