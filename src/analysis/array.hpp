// Array subscript analysis (paper §2, ¶2).
//
// "The FORTRAN-restructuring literature contains an extensive discussion
// of the techniques for detecting conflicts among accesses to arrays …
// The techniques developed for FORTRAN can be applied to Lisp arrays
// also."
//
// The FORTRAN-style fragment implemented here: subscripts that are
// affine in a recursion-controlled induction variable,
//
//     (aref v (+ (* a n) b))        index = a·n + b
//
// where the recursion steps n by a constant δ per invocation
// ((f … (+ n δ) …)). A write at a·n+b in invocation i collides with an
// access at a'·n+b' in invocation i+d when
//
//     a·n + b = a'·(n + δ·d) + b'
//
// For the common a = a' case this solves to d = (b − b')/(a·δ): an
// integral d ≥ 1 is a conflict at exactly that distance (the GCD-style
// exact test); a·δ = 0 collides at every distance when b = b'.
// Non-affine subscripts and mismatched coefficients fall back to the
// worst case, distance 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sexpr/ctx.hpp"
#include "sexpr/value.hpp"

namespace curare::analysis {

using sexpr::Symbol;
using sexpr::Value;

/// index = coef·var + offset; var == nullptr means a constant index.
struct AffineIndex {
  Symbol* var = nullptr;
  std::int64_t coef = 0;
  std::int64_t offset = 0;

  std::string to_string() const;
};

/// Parse an index expression: literals, v, (+ v c), (- v c), (1+ v),
/// (1- v), (* a v), (+ (* a v) b) and permutations. nullopt when not
/// affine in a single variable.
std::optional<AffineIndex> parse_affine(sexpr::Ctx& ctx, Value expr);

/// A read or write of an array element.
struct ArrayRef {
  Symbol* array = nullptr;  ///< variable holding the vector
  AffineIndex index;
  bool affine = true;  ///< false: unknown subscript (worst case)
  bool is_write = false;
  Value form;
  int stmt_index = -1;

  std::string to_string() const;
};

/// Distance of the collision between `earlier` (invocation i) and
/// `later` (invocation i+d, whose induction variable has advanced by
/// `step`·d). At least one of the two must be a write — the caller
/// checks. Returns nullopt when the elements can never coincide, or the
/// exact integral d ≥ 1 when they do (1 for worst-case fallbacks).
std::optional<int> array_collision_distance(
    const ArrayRef& earlier, const ArrayRef& later,
    std::optional<std::int64_t> step, int max_distance);

}  // namespace curare::analysis
