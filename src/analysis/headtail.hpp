// Head/tail partition of a recursive function body (paper §3.1).
//
// "A statement S_i belongs in the tail of f if S_i is not a recursive
// call and is dominated by a recursive call. A statement that is not in
// f's tail is in its head. The head contains all recursive calls and all
// statements that might execute before a recursive call."
//
// The partition drives everything in §3–4: the predicted concurrency is
// (|H|+|T|)/|H|, lock statements must sit in the head, the delay
// transformation moves statements INTO the head, and the scheduler's
// optimal server count S* = sqrt(d(h+t)/h) needs h and t.
//
// Sizes are static estimates — the number of S-expression nodes in a
// statement — in the spirit of the Sarkar–Hennessy cost estimates the
// paper cites. Benchmarks measure the real h and t dynamically.
#pragma once

#include <vector>

#include "analysis/function_info.hpp"
#include "sexpr/ctx.hpp"

namespace curare::analysis {

struct StmtClass {
  Value form;
  bool in_tail = false;
  bool is_rec_call = false;   ///< the statement IS a recursive call
  bool has_rec_call = false;  ///< a recursive call appears inside it
  std::size_t size = 0;       ///< node-count cost estimate
};

struct HeadTail {
  std::vector<StmtClass> stmts;
  std::size_t head_size = 0;
  std::size_t tail_size = 0;

  /// Paper §3.1: number of invocations that can execute simultaneously.
  double concurrency() const {
    if (head_size == 0) return 1.0;
    return static_cast<double>(head_size + tail_size) /
           static_cast<double>(head_size);
  }
};

/// Node count of a form (atoms and conses).
std::size_t form_size(Value form);

/// Does a self-recursive call to `fname` appear anywhere inside `form`
/// (not counting quoted data)?
bool contains_rec_call(sexpr::Ctx& ctx, Value form, Symbol* fname);

HeadTail partition_head_tail(sexpr::Ctx& ctx, const FunctionInfo& info);

}  // namespace curare::analysis
