// Interprocedural effect summaries.
//
// The paper's extractor must assume the worst about calls to functions
// it has not analyzed ("a program analyzer can reasonably assume the
// worst about their side-effects", §2) — but a whole-program driver HAS
// the other defuns. A summary classifies each user function by the most
// severe thing it can do to structure reachable from its arguments
//
//     Pure < DeepRead < DeepWrite < Opaque
//
// and records the global variables it (transitively) reads and writes,
// so a caller's conflict detection sees the callee's shared-state
// traffic. Summaries are computed by an optimistic fixpoint over the
// call graph (monotone in the effect lattice), which converges for
// arbitrary mutual recursion.
//
// This turns e.g.
//
//   (defun get-val (x) (car x))
//   (defun f (l) (print (get-val l)) (f (cdr l)))
//
// from "worst-case deep write through l" into "read-only" — and f
// becomes transformable without declarations.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/effects.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::analysis {

using sexpr::Symbol;
using sexpr::Value;

/// Argument-effect lattice for whole functions.
enum class FnEffect { Pure, DeepRead, DeepWrite, Opaque };

const char* fn_effect_name(FnEffect e);

struct FnSummary {
  FnEffect effect = FnEffect::Pure;
  std::unordered_set<Symbol*> global_reads;
  std::unordered_set<Symbol*> global_writes;

  std::string to_string() const;
};

class SummaryMap {
 public:
  const FnSummary* lookup(Symbol* fn) const {
    auto it = map_.find(fn);
    return it == map_.end() ? nullptr : &it->second;
  }
  FnSummary& slot(Symbol* fn) { return map_[fn]; }
  std::size_t size() const { return map_.size(); }
  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::unordered_map<Symbol*, FnSummary> map_;
};

/// Compute summaries for every defun form in `defuns`, to fixpoint.
SummaryMap compute_summaries(sexpr::Ctx& ctx,
                             const decl::Declarations& decls,
                             const std::vector<Value>& defuns);

}  // namespace curare::analysis
