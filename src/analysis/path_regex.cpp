#include "analysis/path_regex.hpp"

#include <deque>

namespace curare::analysis {

namespace {
RegexPtr make(PathRegex::Op op, Field lit, std::vector<RegexPtr> children) {
  struct Access : PathRegex {
    Access(Op o, Field l, std::vector<RegexPtr> c)
        : PathRegex(o, l, std::move(c)) {}
  };
  // PathRegex's constructor is private; expose it through a local
  // subclass so construction stays funneled through the factories.
  return std::make_shared<Access>(op, lit, std::move(children));
}
}  // namespace

RegexPtr PathRegex::epsilon() {
  static RegexPtr eps = make(Op::Epsilon, nullptr, {});
  return eps;
}

RegexPtr PathRegex::literal(Field f) { return make(Op::Literal, f, {}); }

RegexPtr PathRegex::any() {
  static RegexPtr a = make(Op::Any, nullptr, {});
  return a;
}

RegexPtr PathRegex::word(const FieldPath& path) {
  if (path.is_empty()) return epsilon();
  std::vector<RegexPtr> parts;
  parts.reserve(path.size());
  for (Field f : path.fields()) parts.push_back(literal(f));
  return concat(std::move(parts));
}

RegexPtr PathRegex::concat(std::vector<RegexPtr> parts) {
  std::vector<RegexPtr> flat;
  for (RegexPtr& p : parts) {
    if (p->op() == Op::Epsilon) continue;  // ε is the concat unit
    if (p->op() == Op::Concat) {
      flat.insert(flat.end(), p->children().begin(), p->children().end());
    } else {
      flat.push_back(std::move(p));
    }
  }
  if (flat.empty()) return epsilon();
  if (flat.size() == 1) return flat[0];
  return make(Op::Concat, nullptr, std::move(flat));
}

RegexPtr PathRegex::alt(std::vector<RegexPtr> parts) {
  if (parts.empty()) return epsilon();
  if (parts.size() == 1) return parts[0];
  return make(Op::Alt, nullptr, std::move(parts));
}

RegexPtr PathRegex::star(RegexPtr r) {
  if (r->op() == Op::Star || r->op() == Op::Epsilon) return r;
  return make(Op::Star, nullptr, {std::move(r)});
}

RegexPtr PathRegex::plus(RegexPtr r) {
  RegexPtr starred = star(r);
  return concat(std::move(r), std::move(starred));
}

RegexPtr PathRegex::power(const RegexPtr& r, std::size_t n) {
  if (n == 0) return epsilon();
  std::vector<RegexPtr> parts(n, r);
  return concat(std::move(parts));
}

std::string PathRegex::to_string() const {
  switch (op_) {
    case Op::Epsilon: return "ε";
    case Op::Any: return "Σ";
    case Op::Literal: return lit_->name;
    case Op::Concat: {
      std::string s;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) s += '.';
        const PathRegex& c = *children_[i];
        if (c.op() == Op::Alt) {
          s += '(' + c.to_string() + ')';
        } else {
          s += c.to_string();
        }
      }
      return s;
    }
    case Op::Alt: {
      std::string s;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) s += '|';
        s += children_[i]->to_string();
      }
      return s;
    }
    case Op::Star: {
      const PathRegex& c = *children_[0];
      const bool paren =
          c.op() == Op::Concat || c.op() == Op::Alt;
      return (paren ? "(" + c.to_string() + ")" : c.to_string()) + "*";
    }
  }
  return "?";
}

// ---- NFA -----------------------------------------------------------------

int Nfa::new_state() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

std::pair<int, int> Nfa::build(const PathRegex& r) {
  using Op = PathRegex::Op;
  switch (r.op()) {
    case Op::Epsilon: {
      int s = new_state();
      int t = new_state();
      states_[static_cast<std::size_t>(s)].push_back(
          {Edge::Type::Eps, nullptr, t});
      return {s, t};
    }
    case Op::Literal: {
      int s = new_state();
      int t = new_state();
      states_[static_cast<std::size_t>(s)].push_back(
          {Edge::Type::Lit, r.lit(), t});
      return {s, t};
    }
    case Op::Any: {
      int s = new_state();
      int t = new_state();
      states_[static_cast<std::size_t>(s)].push_back(
          {Edge::Type::Any, nullptr, t});
      return {s, t};
    }
    case Op::Concat: {
      std::pair<int, int> first = build(*r.children().front());
      int entry = first.first;
      int prev_exit = first.second;
      for (std::size_t i = 1; i < r.children().size(); ++i) {
        auto [s, t] = build(*r.children()[i]);
        states_[static_cast<std::size_t>(prev_exit)].push_back(
            {Edge::Type::Eps, nullptr, s});
        prev_exit = t;
      }
      return {entry, prev_exit};
    }
    case Op::Alt: {
      int s = new_state();
      int t = new_state();
      for (const RegexPtr& c : r.children()) {
        auto [cs, ct] = build(*c);
        states_[static_cast<std::size_t>(s)].push_back(
            {Edge::Type::Eps, nullptr, cs});
        states_[static_cast<std::size_t>(ct)].push_back(
            {Edge::Type::Eps, nullptr, t});
      }
      return {s, t};
    }
    case Op::Star: {
      int s = new_state();
      int t = new_state();
      auto [cs, ct] = build(*r.children()[0]);
      auto& from_s = states_[static_cast<std::size_t>(s)];
      from_s.push_back({Edge::Type::Eps, nullptr, cs});
      from_s.push_back({Edge::Type::Eps, nullptr, t});
      auto& from_ct = states_[static_cast<std::size_t>(ct)];
      from_ct.push_back({Edge::Type::Eps, nullptr, cs});
      from_ct.push_back({Edge::Type::Eps, nullptr, t});
      return {s, t};
    }
  }
  throw sexpr::LispError("path_regex: unknown regex op");
}

Nfa::Nfa(const RegexPtr& regex) {
  auto [s, t] = build(*regex);
  start_ = s;
  accept_ = t;

  // Reverse reachability to the accept state: a live simulation set only
  // witnesses a prefix of some full word if one of its states can still
  // reach accept. (Thompson fragments keep every state on a start→accept
  // path, but computing it explicitly keeps the queries honest under
  // future construction changes.)
  std::vector<std::vector<int>> rev(states_.size());
  for (std::size_t from = 0; from < states_.size(); ++from)
    for (const Edge& e : states_[from])
      rev[static_cast<std::size_t>(e.to)].push_back(static_cast<int>(from));
  can_reach_accept_.assign(states_.size(), false);
  std::deque<int> work{accept_};
  can_reach_accept_[static_cast<std::size_t>(accept_)] = true;
  while (!work.empty()) {
    int s2 = work.front();
    work.pop_front();
    for (int p : rev[static_cast<std::size_t>(s2)]) {
      if (!can_reach_accept_[static_cast<std::size_t>(p)]) {
        can_reach_accept_[static_cast<std::size_t>(p)] = true;
        work.push_back(p);
      }
    }
  }
}

void Nfa::eps_closure(std::vector<bool>& set) const {
  std::deque<int> work;
  for (std::size_t i = 0; i < set.size(); ++i)
    if (set[i]) work.push_back(static_cast<int>(i));
  while (!work.empty()) {
    int s = work.front();
    work.pop_front();
    for (const Edge& e : states_[static_cast<std::size_t>(s)]) {
      if (e.type == Edge::Type::Eps &&
          !set[static_cast<std::size_t>(e.to)]) {
        set[static_cast<std::size_t>(e.to)] = true;
        work.push_back(e.to);
      }
    }
  }
}

std::vector<bool> Nfa::step(const std::vector<bool>& set, Field f) const {
  std::vector<bool> next(states_.size(), false);
  for (std::size_t s = 0; s < set.size(); ++s) {
    if (!set[s]) continue;
    for (const Edge& e : states_[s]) {
      if (e.type == Edge::Type::Any ||
          (e.type == Edge::Type::Lit && e.lit == f)) {
        next[static_cast<std::size_t>(e.to)] = true;
      }
    }
  }
  eps_closure(next);
  return next;
}

bool Nfa::matches(const FieldPath& word) const {
  std::vector<bool> set(states_.size(), false);
  set[static_cast<std::size_t>(start_)] = true;
  eps_closure(set);
  for (Field f : word.fields()) {
    set = step(set, f);
  }
  return set[static_cast<std::size_t>(accept_)];
}

bool Nfa::word_is_prefix_of_language(const FieldPath& word) const {
  std::vector<bool> set(states_.size(), false);
  set[static_cast<std::size_t>(start_)] = true;
  eps_closure(set);
  for (Field f : word.fields()) {
    set = step(set, f);
  }
  for (std::size_t s = 0; s < set.size(); ++s)
    if (set[s] && can_reach_accept_[s]) return true;
  return false;
}

bool Nfa::language_has_prefix_of_word(const FieldPath& word) const {
  std::vector<bool> set(states_.size(), false);
  set[static_cast<std::size_t>(start_)] = true;
  eps_closure(set);
  if (set[static_cast<std::size_t>(accept_)]) return true;  // ε ∈ L
  for (Field f : word.fields()) {
    set = step(set, f);
    if (set[static_cast<std::size_t>(accept_)]) return true;
  }
  return false;
}

}  // namespace curare::analysis
