#include "analysis/headtail.hpp"

#include "sexpr/list_ops.hpp"

namespace curare::analysis {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::car;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;

std::size_t form_size(Value form) {
  if (!form.is(Kind::Cons)) return 1;
  std::size_t n = 0;
  while (form.is(Kind::Cons)) {
    auto* c = static_cast<sexpr::Cons*>(form.obj());
    n += form_size(c->car());
    form = c->cdr();
  }
  if (!form.is_nil()) n += 1;  // dotted tail
  return n + 1;
}

bool contains_rec_call(sexpr::Ctx& ctx, Value form, Symbol* fname) {
  (void)ctx;
  if (!form.is(Kind::Cons)) return false;
  Value head = car(form);
  if (head.is(Kind::Symbol)) {
    Symbol* op = static_cast<Symbol*>(head.obj());
    if (op == fname) return true;
    if (op->name == "quote") return false;
  }
  for (Value rest = form; rest.is(Kind::Cons); rest = cdr(rest)) {
    if (contains_rec_call(ctx, car(rest), fname)) return true;
  }
  return false;
}

namespace {

class Partitioner {
 public:
  Partitioner(sexpr::Ctx& ctx, Symbol* fname) : ctx_(ctx), fname_(fname) {}

  HeadTail run(Value body) {
    bool dominated = false;
    classify_seq(body, dominated);
    for (const StmtClass& s : out_.stmts) {
      if (s.in_tail) {
        out_.tail_size += s.size;
      } else {
        out_.head_size += s.size;
      }
    }
    return std::move(out_);
  }

 private:
  /// Classify each form of a sequence; `dominated` threads through and
  /// is updated after forms that always perform a recursive call.
  /// Returns true when the whole sequence always calls.
  bool classify_seq(Value forms, bool& dominated) {
    bool always = false;
    for (Value rest = forms; !rest.is_nil(); rest = cdr(rest)) {
      always |= classify_form(car(rest), dominated);
      dominated |= always;
    }
    return always;
  }

  /// Classify one form. Returns true when every execution path through
  /// the form performs a recursive call.
  bool classify_form(Value form, bool dominated) {
    if (!form.is(Kind::Cons)) {
      emit(form, dominated);
      return false;
    }
    Value head = car(form);
    if (!head.is(Kind::Symbol)) {
      emit(form, dominated);
      return contains_rec_call(ctx_, form, fname_);
    }
    const std::string& op = static_cast<Symbol*>(head.obj())->name;

    if (op == "quote" || op == "declare") {
      return false;  // no cost, no calls
    }

    if (op == "progn") {
      bool dom = dominated;
      return classify_seq(cdr(form), dom);
    }

    if (op == "when" || op == "unless") {
      emit(cadr(form), dominated);  // the test runs unconditionally
      bool dom = dominated;
      classify_seq(cddr(form), dom);
      return false;  // the body may be skipped
    }

    if (op == "if") {
      emit(cadr(form), dominated);
      bool dom_then = dominated;
      const bool then_calls = classify_form(caddr(form), dom_then);
      Value else_form = sexpr::cadddr(form);
      bool else_calls = false;
      if (!sexpr::cdddr(form).is_nil()) {
        bool dom_else = dominated;
        else_calls = classify_form(else_form, dom_else);
      }
      return then_calls && else_calls && !sexpr::cdddr(form).is_nil();
    }

    if (op == "cond") {
      bool all_call = true;
      bool has_default = false;
      for (Value cl = cdr(form); !cl.is_nil(); cl = cdr(cl)) {
        Value clause = car(cl);
        Value test = car(clause);
        emit(test, dominated);
        if (test.is(Kind::Symbol) &&
            static_cast<Symbol*>(test.obj()) == ctx_.s_t) {
          has_default = true;
        }
        bool dom = dominated;
        all_call &= classify_seq(cdr(clause), dom);
      }
      return all_call && has_default;
    }

    if (op == "let" || op == "let*") {
      bool inits_call = false;
      for (Value b = cadr(form); !b.is_nil(); b = cdr(b)) {
        Value binding = car(b);
        if (binding.is(Kind::Cons)) {
          emit(cadr(binding), dominated);
          inits_call |= contains_rec_call(ctx_, cadr(binding), fname_);
        }
      }
      bool dom = dominated || inits_call;
      return classify_seq(cddr(form), dom) || inits_call;
    }

    if (op == "and" || op == "or") {
      // First element always runs; the rest are conditional.
      Value rest = cdr(form);
      bool first = true;
      bool first_calls = false;
      for (; !rest.is_nil(); rest = cdr(rest)) {
        bool dom = dominated || first_calls;
        const bool calls = classify_form(car(rest), dom);
        if (first) first_calls = calls;
        first = false;
      }
      return first_calls;
    }

    if (op == "while" || op == "dotimes" || op == "dolist") {
      // Loop bodies may run zero times.
      emit(cadr(form), dominated);
      bool dom = dominated;
      classify_seq(cddr(form), dom);
      return false;
    }

    if (op == "setf" || op == "setq" || op == "lambda" ||
        op == "future") {
      emit(form, dominated);
      return contains_rec_call(ctx_, form, fname_);
    }

    // Ordinary call (possibly the recursive call itself).
    emit(form, dominated);
    return contains_rec_call(ctx_, form, fname_);
  }

  void emit(Value form, bool dominated) {
    StmtClass s;
    s.form = form;
    s.has_rec_call = contains_rec_call(ctx_, form, fname_);
    s.is_rec_call = form.is(Kind::Cons) && car(form).is(Kind::Symbol) &&
                    static_cast<Symbol*>(car(form).obj()) == fname_;
    // "S_i belongs in the tail if S_i is not a recursive call and is
    // dominated by a recursive call." Statements containing embedded
    // calls stay in the head (the head holds all recursive calls).
    s.in_tail = dominated && !s.has_rec_call;
    s.size = form_size(form);
    out_.stmts.push_back(std::move(s));
  }

  sexpr::Ctx& ctx_;
  Symbol* fname_;
  HeadTail out_;
};

}  // namespace

HeadTail partition_head_tail(sexpr::Ctx& ctx, const FunctionInfo& info) {
  Partitioner p(ctx, info.name);
  return p.run(info.body);
}

}  // namespace curare::analysis
