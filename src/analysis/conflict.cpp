#include "analysis/conflict.hpp"

#include <unordered_set>

#include "sexpr/printer.hpp"

namespace curare::analysis {

const char* dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::Flow: return "flow";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
  }
  return "?";
}

std::string Conflict::describe() const {
  std::string s = dep_kind_name(kind);
  s += " dependency, distance ";
  s += distance == kUnbounded ? std::string("> bound")
                              : std::to_string(distance);
  if (is_variable_conflict()) {
    s += ", variable " + var->name;
  } else if (is_array_conflict()) {
    s += ", " + arr_earlier.to_string() + " vs " + arr_later.to_string();
  } else {
    s += ", " + earlier.to_string() + " vs " + later.to_string();
  }
  if (reorderable_op != nullptr)
    s += " (reorderable via " + reorderable_op->name + ")";
  return s;
}

std::optional<int> ConflictReport::min_distance() const {
  if (cross_param_aliasing) return 1;
  std::optional<int> best;
  for (const Conflict& c : conflicts) {
    const int d = c.distance == Conflict::kUnbounded ? 1 : c.distance;
    if (!best || d < *best) best = d;
  }
  return best;
}

namespace {

DepKind classify(bool earlier_writes, bool later_writes) {
  if (earlier_writes && later_writes) return DepKind::Output;
  return earlier_writes ? DepKind::Flow : DepKind::Anti;
}

/// Does the pair conflict at distance d? `a` is in the earlier
/// invocation, `b` in the later; `step` is τ for their common root.
bool conflicts_at(const StructRef& a, const StructRef& b,
                  const RegexPtr& step, std::size_t d) {
  const RegexPtr rd =
      PathRegex::concat(PathRegex::power(step, d), PathRegex::word(b.path));
  const Nfa nfa(rd);
  const bool p1 = nfa.word_is_prefix_of_language(a.path);
  const bool p2 = nfa.language_has_prefix_of_word(a.path);
  const bool either_deep = a.deep || b.deep;

  bool hit = false;
  if (a.is_write) hit |= p1 || (either_deep && p2);
  if (b.is_write) hit |= p2 || (either_deep && p1);
  return hit;
}

/// Same test with τ⁺ in place of τ^d: "is there any distance at all?"
bool conflicts_at_some_distance(const StructRef& a, const StructRef& b,
                                const RegexPtr& step) {
  const RegexPtr r = PathRegex::concat(PathRegex::plus(step),
                                       PathRegex::word(b.path));
  const Nfa nfa(r);
  const bool p1 = nfa.word_is_prefix_of_language(a.path);
  const bool p2 = nfa.language_has_prefix_of_word(a.path);
  const bool either_deep = a.deep || b.deep;

  bool hit = false;
  if (a.is_write) hit |= p1 || (either_deep && p2);
  if (b.is_write) hit |= p2 || (either_deep && p1);
  return hit;
}

bool same_reorderable_update(const decl::Declarations& decls,
                             const StructRef& a, const StructRef& b) {
  return a.is_write && b.is_write && a.update_op != nullptr &&
         a.update_op == b.update_op && a.path == b.path &&
         decls.is_reorderable_op(a.update_op);
}

}  // namespace

ConflictReport detect_conflicts(sexpr::Ctx& ctx,
                                const decl::Declarations& decls,
                                const FunctionInfo& info,
                                const ConflictOptions& opts) {
  (void)ctx;
  ConflictReport report;
  if (!info.is_recursive()) {
    report.notes.push_back("function is not self-recursive; no "
                           "inter-invocation conflicts possible");
    return report;
  }

  // ---- cross-parameter aliasing (paper §1.3 worst case) ----------------
  if (!decls.has_noalias(info.name)) {
    std::unordered_set<Symbol*> written_roots;
    std::unordered_set<Symbol*> touched_roots;
    for (const StructRef& r : info.refs) {
      touched_roots.insert(r.root);
      if (r.is_write) written_roots.insert(r.root);
    }
    if (!written_roots.empty() && touched_roots.size() > 1) {
      report.cross_param_aliasing = true;
      report.notes.push_back(
          "worst-case aliasing assumed between parameters; declare "
          "(noalias " +
          info.name->name + ") if arguments never share structure");
    }
  }

  // ---- structure conflicts ----------------------------------------------
  // Cache per-root step transfer functions.
  std::vector<std::pair<Symbol*, RegexPtr>> steps;
  auto step_for = [&](Symbol* root) -> RegexPtr {
    for (auto& [s, r] : steps)
      if (s == root) return r;
    RegexPtr r = info.step_transfer(root);
    steps.emplace_back(root, r);
    return r;
  };

  for (std::size_t i = 0; i < info.refs.size(); ++i) {
    for (std::size_t j = 0; j < info.refs.size(); ++j) {
      const StructRef& a = info.refs[i];  // earlier invocation
      const StructRef& b = info.refs[j];  // later invocation
      if (a.root != b.root) continue;     // cross-root handled above
      if (!a.is_write && !b.is_write) continue;
      RegexPtr step = step_for(a.root);
      if (step == nullptr) continue;  // parameter never recurs

      if (opts.drop_reorderable && same_reorderable_update(decls, a, b))
        continue;

      // One τ⁺ query rules out most pairs before the per-distance
      // search runs (the search builds an NFA per distance).
      if (!conflicts_at_some_distance(a, b, step)) continue;
      std::optional<int> dist = Conflict::kUnbounded;
      for (int d = 1; d <= opts.max_distance; ++d) {
        if (conflicts_at(a, b, step, static_cast<std::size_t>(d))) {
          dist = d;
          break;
        }
      }

      Conflict c;
      c.earlier = a;
      c.later = b;
      c.kind = classify(a.is_write, b.is_write);
      c.distance = *dist;
      if (same_reorderable_update(decls, a, b))
        c.reorderable_op = a.update_op;
      report.conflicts.push_back(std::move(c));
    }
  }

  // ---- array conflicts (§2's FORTRAN-style subscripts) ------------------
  for (std::size_t i = 0; i < info.array_refs.size(); ++i) {
    for (std::size_t j = 0; j < info.array_refs.size(); ++j) {
      const ArrayRef& a = info.array_refs[i];  // earlier invocation
      const ArrayRef& b = info.array_refs[j];  // later invocation
      if (a.array != b.array) continue;
      if (!a.is_write && !b.is_write) continue;
      // The induction step of the subscript variable (same for both
      // directions; unknown when the variable is not a param or sites
      // disagree).
      Symbol* ivar = a.affine && a.index.var ? a.index.var
                     : (b.affine ? b.index.var : nullptr);
      std::optional<std::int64_t> step =
          ivar ? info.induction_step(ctx, ivar) : std::nullopt;
      // Collision of a's element (at n) against b's (at n + δ·d).
      auto d = array_collision_distance(a, b, step, opts.max_distance);
      if (!d) continue;
      Conflict c;
      c.array = a.array;
      c.arr_earlier = a;
      c.arr_later = b;
      c.kind = classify(a.is_write, b.is_write);
      c.distance = std::max(1, *d);
      report.conflicts.push_back(std::move(c));
    }
  }

  // ---- free-variable conflicts --------------------------------------------
  for (std::size_t i = 0; i < info.var_refs.size(); ++i) {
    for (std::size_t j = 0; j < info.var_refs.size(); ++j) {
      const VarRef& a = info.var_refs[i];
      const VarRef& b = info.var_refs[j];
      if (a.var != b.var) continue;
      if (!a.is_write && !b.is_write) continue;
      // Deduplicate: emit each unordered pair once, writes first.
      if (i > j) continue;

      // Two licences (§3.2.3): a commutative+associative+atomic update
      // operator, or an insert into a collection the programmer
      // declared unordered (here: pushes onto a declared-unordered
      // variable).
      const bool same_update = a.is_write && b.is_write &&
                               a.update_op != nullptr &&
                               a.update_op == b.update_op;
      const bool reorderable =
          same_update && (decls.is_reorderable_op(a.update_op) ||
                          (a.update_op->name == "push" &&
                           decls.is_unordered_insert(a.var)));
      if (opts.drop_reorderable && reorderable) continue;

      Conflict c;
      c.var = a.var;
      c.var_earlier = a;
      c.var_later = b;
      c.kind = classify(a.is_write, b.is_write);
      c.distance = 1;
      if (reorderable) c.reorderable_op = a.update_op;
      report.conflicts.push_back(std::move(c));
    }
  }

  return report;
}

}  // namespace curare::analysis
