// Effect classification shared by the extractor (per-call treatment)
// and the interprocedural summary computation.
#pragma once

#include <string>

namespace curare::analysis {

/// What an operation does to structure reachable from its arguments.
enum class BuiltinEffect {
  Pure,        ///< reads only what its argument accessors already read
  DeepRead,    ///< traverses everything below its arguments
  WriteCar,    ///< writes the car field of argument 0 (rplaca)
  WriteCdr,    ///< writes the cdr field of argument 0 (rplacd)
  DeepWrite,   ///< may write anywhere below its arguments
  Opaque,      ///< defeats analysis entirely (set, eval)
  HigherOrder  ///< applies a function argument / unknown user function
};

/// The effect of a named builtin; HigherOrder for unknown names.
BuiltinEffect builtin_effect(const std::string& name);

}  // namespace curare::analysis
