// Conflict detection between invocations of a recursive function
// (paper §2.1–2.2).
//
// The test is the paper's prefix relation, generalized to regular
// transfer functions: references r1 (in invocation i) and r2 (in
// invocation i+d) over the same root parameter conflict at distance d
// when the written location of one lies on the traversal of the other,
// after translating r2's accessor by τ^d:
//
//     r1 writes:  A1 ≤ some word of L(τ^d · A2)
//     r2 writes:  some word of L(τ^d · A2) ≤ A1
//
// `deep` references (print-style traversals, worst-cased calls) touch
// the whole substructure below their path, which widens the test to
// both prefix directions.
//
// Free-variable conflicts (both invocations touch the same global cell)
// are reported at distance 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/function_info.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::analysis {

enum class DepKind { Flow, Anti, Output };

const char* dep_kind_name(DepKind k);

struct Conflict {
  /// Earlier-invocation reference (structure locus) — unused for
  /// variable conflicts.
  StructRef earlier;
  StructRef later;
  /// Variable locus (set for free-variable conflicts).
  Symbol* var = nullptr;
  VarRef var_earlier;
  VarRef var_later;

  /// Array locus (set for subscripted array conflicts, §2's
  /// FORTRAN-style analysis).
  Symbol* array = nullptr;
  ArrayRef arr_earlier;
  ArrayRef arr_later;

  DepKind kind = DepKind::Flow;
  /// Minimum conflicting distance d ≥ 1; kUnbounded when the conflict
  /// exists only at some distance beyond the search bound (τ contains a
  /// star and no finite witness ≤ max_distance was found).
  int distance = 1;
  static constexpr int kUnbounded = -1;

  bool is_variable_conflict() const { return var != nullptr; }
  bool is_array_conflict() const { return array != nullptr; }
  /// The update operator when BOTH sides are the same reorderable
  /// update (candidate for the §3.2.3 reordering transformation).
  Symbol* reorderable_op = nullptr;

  std::string describe() const;
};

struct ConflictOptions {
  int max_distance = 16;
  /// Drop conflicts whose two sides are the same commutative+associative
  /// +atomic update (the reorder transformation's licence). Off by
  /// default: detection reports everything; transforms decide.
  bool drop_reorderable = false;
};

struct ConflictReport {
  std::vector<Conflict> conflicts;
  /// True when worst-case aliasing between parameters had to be assumed
  /// (two parameters dereferenced, one written, no noalias declaration).
  bool cross_param_aliasing = false;
  std::vector<std::string> notes;

  bool clean() const { return conflicts.empty() && !cross_param_aliasing; }

  /// The concurrency cap from §3.2.1: min conflict distance (unbounded
  /// or variable conflicts cap at 1). nullopt when conflict-free.
  std::optional<int> min_distance() const;
};

ConflictReport detect_conflicts(sexpr::Ctx& ctx,
                                const decl::Declarations& decls,
                                const FunctionInfo& info,
                                const ConflictOptions& opts = {});

}  // namespace curare::analysis
