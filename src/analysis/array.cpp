#include "analysis/array.hpp"

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"

namespace curare::analysis {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;

std::string AffineIndex::to_string() const {
  if (var == nullptr) return std::to_string(offset);
  std::string s;
  if (coef != 1) s += std::to_string(coef) + "·";
  s += var->name;
  if (offset > 0) s += "+" + std::to_string(offset);
  if (offset < 0) s += std::to_string(offset);
  return s;
}

std::string ArrayRef::to_string() const {
  std::string s = array->name + "[" +
                  (affine ? index.to_string() : std::string("?")) + "]";
  if (is_write) s += " [write]";
  return s;
}

namespace {

std::optional<AffineIndex> combine_add(const AffineIndex& a,
                                       const AffineIndex& b, bool sub) {
  AffineIndex out;
  if (a.var != nullptr && b.var != nullptr) {
    if (a.var != b.var) return std::nullopt;
    out.var = a.var;
    out.coef = sub ? a.coef - b.coef : a.coef + b.coef;
  } else {
    out.var = a.var != nullptr ? a.var : b.var;
    out.coef = a.var != nullptr ? a.coef : (sub ? -b.coef : b.coef);
  }
  out.offset = sub ? a.offset - b.offset : a.offset + b.offset;
  if (out.var != nullptr && out.coef == 0) out.var = nullptr;
  return out;
}

}  // namespace

std::optional<AffineIndex> parse_affine(sexpr::Ctx& ctx, Value expr) {
  if (expr.is_fixnum()) {
    return AffineIndex{nullptr, 0, expr.as_fixnum()};
  }
  if (expr.is(Kind::Symbol)) {
    return AffineIndex{static_cast<Symbol*>(expr.obj()), 1, 0};
  }
  if (!expr.is(Kind::Cons) || !sexpr::car(expr).is(Kind::Symbol))
    return std::nullopt;
  const std::string& op = as_symbol(sexpr::car(expr))->name;

  if (op == "1+" || op == "1-") {
    auto inner = parse_affine(ctx, cadr(expr));
    if (!inner) return std::nullopt;
    inner->offset += (op == "1+") ? 1 : -1;
    return inner;
  }
  if ((op == "+" || op == "-") && sexpr::list_length(expr) == 3) {
    auto a = parse_affine(ctx, cadr(expr));
    auto b = parse_affine(ctx, caddr(expr));
    if (!a || !b) return std::nullopt;
    return combine_add(*a, *b, op == "-");
  }
  if (op == "-" && sexpr::list_length(expr) == 2) {
    auto a = parse_affine(ctx, cadr(expr));
    if (!a) return std::nullopt;
    a->coef = -a->coef;
    a->offset = -a->offset;
    return a;
  }
  if (op == "*" && sexpr::list_length(expr) == 3) {
    auto a = parse_affine(ctx, cadr(expr));
    auto b = parse_affine(ctx, caddr(expr));
    if (!a || !b) return std::nullopt;
    // One side must be constant.
    if (a->var != nullptr && b->var != nullptr) return std::nullopt;
    const AffineIndex& konst = (a->var == nullptr) ? *a : *b;
    const AffineIndex& lin = (a->var == nullptr) ? *b : *a;
    AffineIndex out;
    out.var = lin.var;
    out.coef = lin.coef * konst.offset;
    out.offset = lin.offset * konst.offset;
    if (out.var != nullptr && out.coef == 0) out.var = nullptr;
    return out;
  }
  return std::nullopt;
}

std::optional<int> array_collision_distance(
    const ArrayRef& earlier, const ArrayRef& later,
    std::optional<std::int64_t> step, int max_distance) {
  if (earlier.array != later.array) return std::nullopt;
  // Unknown subscripts or unknown induction step: worst case.
  if (!earlier.affine || !later.affine || !step.has_value()) return 1;

  const AffineIndex& a = earlier.index;
  const AffineIndex& b = later.index;

  // Both constant: collide at every distance iff equal.
  if (a.var == nullptr && b.var == nullptr)
    return a.offset == b.offset ? std::optional<int>(1) : std::nullopt;

  // Different induction variables: cannot reason — worst case.
  if (a.var != nullptr && b.var != nullptr && a.var != b.var) return 1;
  // One constant, one linear in n: n takes many values → collide at
  // some unknown distance unless coef 0; worst case.
  if (a.var == nullptr || b.var == nullptr) return 1;

  // a·n + a0  vs  b·(n + δd) + b0  — same variable.
  const std::int64_t delta = *step;
  if (a.coef != b.coef) return 1;  // mismatched coefficients: punt
  const std::int64_t denom = b.coef * delta;
  const std::int64_t numer = a.offset - b.offset;
  if (denom == 0) {
    // Index does not move between invocations.
    return numer == 0 ? std::optional<int>(1) : std::nullopt;
  }
  if (numer % denom != 0) return std::nullopt;  // never an integer d
  const std::int64_t d = numer / denom;
  if (d < 1) return std::nullopt;  // collision is in the past
  (void)max_distance;  // the affine solve is exact; no search bound
  return static_cast<int>(d);
}

}  // namespace curare::analysis
