#include "analysis/sapp.hpp"

#include <unordered_set>
#include <vector>

#include "sexpr/printer.hpp"

namespace curare::analysis {

using sexpr::Cons;
using sexpr::Kind;
using sexpr::Value;

SappResult check_sapp(Value root) {
  SappResult result;
  std::unordered_set<Cons*> seen;
  std::vector<Value> stack{root};
  while (!stack.empty()) {
    Value v = stack.back();
    stack.pop_back();
    if (!v.is(Kind::Cons)) continue;
    Cons* c = static_cast<Cons*>(v.obj());
    if (!seen.insert(c).second) {
      result.holds = false;
      result.witness = v;
      result.violation =
          "cell reachable along two canonical paths (shared substructure "
          "or cycle): " +
          sexpr::print_str(v, {.readably = true, .max_depth = 4,
                               .max_length = 8});
      return result;
    }
    stack.push_back(c->car());
    stack.push_back(c->cdr());
  }
  result.cells = seen.size();
  return result;
}

}  // namespace curare::analysis
