// Extraction of analysis IR from defun forms (paper §2).
//
// The walk is flow-insensitive, exactly as the paper specifies: "This
// combination is flow-insensitive since the information from various
// paths through the program is combined into a form that does not permit
// us to distinguish the portion that is valid at a particular point."
//
// Alias tracking: a local variable bound by let to a pure accessor chain
// of a parameter is a Derived alias (its uses extend the parameter's
// path). A variable bound to a fresh cons is Fresh — writes through it
// cannot conflict with the parameters — unless the fresh value is later
// stored into tracked structure, in which case a first pass promotes it
// to a Derived alias of the store target (keeping the analysis sound for
// patterns like remq-d's destination cell).
#include "analysis/extract.hpp"

#include "analysis/effects.hpp"

#include <unordered_map>

#include "sexpr/equal.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"

namespace curare::analysis {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::car;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;
using sexpr::LispError;

namespace {


bool is_cxr(const std::string& name) {
  if (name.size() < 3 || name.front() != 'c' || name.back() != 'r')
    return false;
  for (std::size_t i = 1; i + 1 < name.size(); ++i)
    if (name[i] != 'a' && name[i] != 'd') return false;
  return true;
}

struct AliasInfo {
  enum class Kind { Root, Derived, Fresh, Unknown };
  Kind kind = Kind::Unknown;
  Symbol* root = nullptr;
  FieldPath path;
};

using AliasMap = std::unordered_map<Symbol*, AliasInfo>;

class Extractor {
 public:
  Extractor(sexpr::Ctx& ctx, const decl::Declarations& decls,
            FunctionInfo& info, const SummaryMap* summaries = nullptr)
      : ctx_(ctx), decls_(decls), info_(info), summaries_(summaries) {}

  void run() {
    // Pass 1: discover fresh-variable promotions (fresh cells stored
    // into tracked structure become aliases of the store target).
    pass2_ = false;
    walk_function();
    // Pass 2: the real extraction, with promotions applied.
    pass2_ = true;
    next_stmt_ = 0;
    info_.refs.clear();
    info_.var_refs.clear();
    info_.array_refs.clear();
    info_.rec_calls.clear();
    info_.dirty_params.clear();
    info_.warnings.clear();
    info_.analyzable = true;
    walk_function();
  }

  std::optional<ResolvedPath> resolve(Value expr,
                                      const AliasMap& aliases) const {
    if (expr.is(Kind::Symbol)) {
      Symbol* s = static_cast<Symbol*>(expr.obj());
      auto it = aliases.find(s);
      if (it == aliases.end()) return std::nullopt;
      const AliasInfo& a = it->second;
      switch (a.kind) {
        case AliasInfo::Kind::Root:
          return ResolvedPath{s, FieldPath::empty()};
        case AliasInfo::Kind::Derived:
          return ResolvedPath{a.root, a.path};
        case AliasInfo::Kind::Fresh: {
          if (pass2_) {
            auto p = promotions_.find(s);
            if (p != promotions_.end() && p->second.root != nullptr)
              return ResolvedPath{p->second.root, p->second.path};
          }
          return std::nullopt;
        }
        case AliasInfo::Kind::Unknown:
          return std::nullopt;
      }
      return std::nullopt;
    }
    if (!expr.is(Kind::Cons) || !car(expr).is(Kind::Symbol))
      return std::nullopt;
    const std::string& op = as_symbol(car(expr))->name;
    if (is_cxr(op)) {
      auto base = resolve(cadr(expr), aliases);
      if (!base) return std::nullopt;
      FieldPath p = base->path;
      // Letters apply right-to-left: (cadr x) is car(cdr(x)).
      for (std::size_t i = op.size() - 2; i >= 1; --i) {
        p = p.then(op[i] == 'a' ? static_cast<Field>(ctx_.s_car)
                                : static_cast<Field>(ctx_.s_cdr));
        if (i == 1) break;
      }
      return ResolvedPath{base->root, p};
    }
    if (op == "nth" || op == "nthcdr") {
      Value idx = cadr(expr);
      if (!idx.is_fixnum() || idx.as_fixnum() < 0) return std::nullopt;
      auto base = resolve(caddr(expr), aliases);
      if (!base) return std::nullopt;
      FieldPath p = base->path;
      for (std::int64_t i = 0; i < idx.as_fixnum(); ++i)
        p = p.then(ctx_.s_cdr);
      if (op == "nth") p = p.then(ctx_.s_car);
      return ResolvedPath{base->root, p};
    }
    // Declared structure accessors: a pointer or data field name used as
    // a one-argument accessor, e.g. (next n) for (structure node
    // (pointers next) ...).
    if (decls_.is_known_field(as_symbol(car(expr))) &&
        !cdr(expr).is_nil() && cddr(expr).is_nil()) {
      auto base = resolve(cadr(expr), aliases);
      if (!base) return std::nullopt;
      return ResolvedPath{base->root, base->path.then(as_symbol(car(expr)))};
    }
    return std::nullopt;
  }

 private:
  enum class Pos { Stmt, Tail, Value };

  void walk_function() {
    AliasMap aliases;
    for (Symbol* p : info_.params)
      aliases[p] = AliasInfo{AliasInfo::Kind::Root, p, {}};
    walk_seq(info_.body, aliases, Pos::Tail);
  }

  /// Walk a body sequence; all but the last form are statements, the
  /// last inherits `last_pos`.
  void walk_seq(Value forms, AliasMap& aliases, Pos last_pos) {
    for (Value rest = forms; !rest.is_nil(); rest = cdr(rest)) {
      const bool last = cdr(rest).is_nil();
      cur_stmt_ = next_stmt_++;
      walk(car(rest), aliases, last ? last_pos : Pos::Stmt);
    }
  }

  void warn(std::string msg) { info_.warnings.push_back(std::move(msg)); }

  void defeat(std::string msg) {
    info_.analyzable = false;
    warn(std::move(msg));
  }

  void note_read(const ResolvedPath& rp, Value form, bool deep) {
    if (rp.path.is_empty() && !deep) return;  // bare variable use
    StructRef r;
    r.root = rp.root;
    r.path = rp.path.canonicalize(decls_);
    r.is_write = false;
    r.deep = deep;
    r.form = form;
    r.stmt_index = cur_stmt_;
    info_.refs.push_back(std::move(r));
  }

  void note_write(const ResolvedPath& rp, Value form, bool deep,
                  Symbol* update_op) {
    StructRef r;
    r.root = rp.root;
    r.path = rp.path.canonicalize(decls_);
    r.is_write = true;
    r.deep = deep;
    r.form = form;
    r.stmt_index = cur_stmt_;
    r.update_op = update_op;
    info_.refs.push_back(std::move(r));
  }

  /// Pass-1 hook: `value` stored at `target` — promote fresh variables.
  void note_store_value(Value value, const ResolvedPath& target,
                        const AliasMap& aliases) {
    if (pass2_ || !value.is(Kind::Symbol)) return;
    Symbol* s = static_cast<Symbol*>(value.obj());
    auto it = aliases.find(s);
    if (it == aliases.end() || it->second.kind != AliasInfo::Kind::Fresh)
      return;
    auto [p, inserted] = promotions_.try_emplace(
        s, ResolvedPath{target.root, target.path});
    if (!inserted &&
        (p->second.root != target.root ||
         !(p->second.path == target.path))) {
      // Stored into two different tracked locations: give up on the
      // variable rather than track a set of aliases.
      p->second = ResolvedPath{nullptr, {}};
    }
  }

  /// Record (aref V I) with V a symbol; I is parsed affinely.
  void note_array_ref(Value aref_form, bool is_write,
                      const AliasMap& aliases) {
    (void)aliases;
    ArrayRef r;
    r.array = static_cast<Symbol*>(cadr(aref_form).obj());
    r.is_write = is_write;
    r.form = aref_form;
    r.stmt_index = cur_stmt_;
    if (auto aff = parse_affine(ctx_, caddr(aref_form))) {
      r.index = *aff;
      r.affine = true;
    } else {
      r.affine = false;
      warn("array subscript " + sexpr::write_str(caddr(aref_form)) +
           " is not affine; worst-case distance assumed");
    }
    info_.array_refs.push_back(std::move(r));
  }

  bool is_special(const std::string& n) const {
    return n == "quote" || n == "if" || n == "cond" || n == "when" ||
           n == "unless" || n == "and" || n == "or" || n == "let" ||
           n == "let*" || n == "progn" || n == "lambda" ||
           n == "defun" || n == "setq" || n == "setf" || n == "while" ||
           n == "dotimes" || n == "dolist" || n == "declare" ||
           n == "future" || n == "incf" || n == "decf" || n == "push" ||
           n == "pop" || n == "defstruct";
  }

  void walk(Value form, AliasMap& aliases, Pos pos);
  void walk_special(const std::string& op, Value form, AliasMap& aliases,
                    Pos pos);
  void walk_call(Symbol* op, Value form, AliasMap& aliases, Pos pos);

  sexpr::Ctx& ctx_;
  const decl::Declarations& decls_;
  FunctionInfo& info_;
  const SummaryMap* summaries_ = nullptr;
  std::unordered_map<Symbol*, ResolvedPath> promotions_;
  bool pass2_ = false;
  int next_stmt_ = 0;
  int cur_stmt_ = -1;
};

void Extractor::walk(Value form, AliasMap& aliases, Pos pos) {
  if (!form.is_object()) return;  // nil, fixnum
  if (form.is(Kind::Symbol)) {
    // A use of a variable. Locals and parameters are not memory
    // conflicts; a free variable read is (shared global state).
    Symbol* s = static_cast<Symbol*>(form.obj());
    if (s->name != "t" && !aliases.contains(s)) {
      VarRef r;
      r.var = s;
      r.is_write = false;
      r.form = form;
      r.stmt_index = cur_stmt_;
      info_.var_refs.push_back(r);
    }
    return;
  }
  if (!form.is(Kind::Cons)) return;  // literals

  Value head = car(form);
  if (!head.is(Kind::Cons) && !head.is(Kind::Symbol)) {
    defeat("call with non-symbol operator: " + sexpr::write_str(form));
    return;
  }
  if (head.is(Kind::Cons)) {
    // ((lambda ...) args): walk the lambda body and the arguments.
    walk(head, aliases, Pos::Value);
    for (Value a = cdr(form); !a.is_nil(); a = cdr(a))
      walk(car(a), aliases, Pos::Value);
    return;
  }

  Symbol* op = static_cast<Symbol*>(head.obj());
  if (is_special(op->name)) {
    walk_special(op->name, form, aliases, pos);
    return;
  }

  // Array element reads: FORTRAN-style subscript analysis (§2).
  if (op->name == "aref" && cadr(form).is(Kind::Symbol)) {
    note_array_ref(form, /*is_write=*/false, aliases);
    walk(caddr(form), aliases, Pos::Value);
    return;
  }

  // Accessor chains resolve to a single (possibly deep) read.
  if (auto rp = resolve(form, aliases)) {
    note_read(*rp, form, /*deep=*/false);
    return;
  }

  walk_call(op, form, aliases, pos);
}

void Extractor::walk_special(const std::string& op, Value form,
                             AliasMap& aliases, Pos pos) {
  if (op == "quote" || op == "declare") return;

  if (op == "if") {
    walk(cadr(form), aliases, Pos::Value);
    const Pos arm = (pos == Pos::Stmt) ? Pos::Stmt : pos;
    cur_stmt_ = next_stmt_++;
    walk(caddr(form), aliases, arm);
    if (!sexpr::cdddr(form).is_nil()) {
      cur_stmt_ = next_stmt_++;
      walk(sexpr::cadddr(form), aliases, arm);
    }
    return;
  }

  if (op == "cond") {
    for (Value cl = cdr(form); !cl.is_nil(); cl = cdr(cl)) {
      Value clause = car(cl);
      walk(car(clause), aliases, Pos::Value);
      AliasMap scoped = aliases;
      walk_seq(cdr(clause), scoped, pos == Pos::Stmt ? Pos::Stmt : pos);
    }
    return;
  }

  if (op == "when" || op == "unless") {
    walk(cadr(form), aliases, Pos::Value);
    AliasMap scoped = aliases;
    walk_seq(cddr(form), scoped, pos == Pos::Stmt ? Pos::Stmt : pos);
    return;
  }

  if (op == "and" || op == "or" || op == "progn") {
    walk_seq(cdr(form), aliases, pos == Pos::Stmt ? Pos::Stmt : pos);
    return;
  }

  if (op == "let" || op == "let*") {
    AliasMap inner = aliases;
    for (Value b = cadr(form); !b.is_nil(); b = cdr(b)) {
      Value binding = car(b);
      if (binding.is(Kind::Symbol)) {
        inner[static_cast<Symbol*>(binding.obj())] =
            AliasInfo{AliasInfo::Kind::Fresh, nullptr, {}};
        continue;
      }
      Symbol* name = as_symbol(car(binding));
      Value init = cadr(binding);
      const AliasMap& init_scope = (op == "let*") ? inner : aliases;
      walk(init, const_cast<AliasMap&>(init_scope), Pos::Value);
      AliasInfo ai;
      if (auto rp = resolve(init, init_scope)) {
        ai = AliasInfo{AliasInfo::Kind::Derived, rp->root, rp->path};
      } else if (init.is(Kind::Cons) && car(init).is(Kind::Symbol) &&
                 (as_symbol(car(init))->name == "cons" ||
                  as_symbol(car(init))->name == "list")) {
        ai = AliasInfo{AliasInfo::Kind::Fresh, nullptr, {}};
      } else {
        ai = AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
      }
      inner[name] = ai;
    }
    walk_seq(cddr(form), inner, pos == Pos::Stmt ? Pos::Stmt : pos);
    return;
  }

  if (op == "lambda") {
    // Analyze the lambda body with its parameters unknown; writes
    // through them will be attributed conservatively.
    AliasMap inner = aliases;
    for (Value p = cadr(form); !p.is_nil(); p = cdr(p)) {
      if (car(p).is(Kind::Symbol))
        inner[static_cast<Symbol*>(car(p).obj())] =
            AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
    }
    walk_seq(cddr(form), inner, Pos::Value);
    return;
  }

  if (op == "defun") {
    warn("nested defun ignored by the analysis");
    return;
  }

  if (op == "setq") {
    for (Value rest = cdr(form); !rest.is_nil(); rest = cddr(rest)) {
      Symbol* var = as_symbol(car(rest));
      Value val = cadr(rest);
      walk(val, aliases, Pos::Value);
      if (info_.param_index(var) >= 0) {
        if (!info_.is_dirty(var)) info_.dirty_params.push_back(var);
        warn("parameter " + var->name +
             " is reassigned; its transfer function degrades to Σ*");
      } else if (auto it = aliases.find(var); it != aliases.end()) {
        // Rebinding a tracked local: re-resolve or drop to Unknown.
        if (auto rp = resolve(val, aliases)) {
          it->second =
              AliasInfo{AliasInfo::Kind::Derived, rp->root, rp->path};
        } else {
          it->second = AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
        }
      } else {
        // Free-variable write: a shared-location modification. Detect
        // the (setq v (op ... v ...)) update shape (paper Fig. 8).
        VarRef r;
        r.var = var;
        r.is_write = true;
        r.form = form;
        r.stmt_index = cur_stmt_;
        if (val.is(Kind::Cons) && car(val).is(Kind::Symbol)) {
          for (Value a = cdr(val); !a.is_nil(); a = cdr(a)) {
            if (car(a).is(Kind::Symbol) &&
                static_cast<Symbol*>(car(a).obj()) == var) {
              r.update_op = as_symbol(car(val));
              break;
            }
          }
        }
        info_.var_refs.push_back(r);
      }
    }
    return;
  }

  if (op == "setf") {
    for (Value rest = cdr(form); !rest.is_nil(); rest = cddr(rest)) {
      Value place = car(rest);
      Value val = cadr(rest);
      walk(val, aliases, Pos::Value);

      if (place.is(Kind::Symbol)) {
        // Equivalent to setq of a variable.
        Symbol* var = static_cast<Symbol*>(place.obj());
        if (info_.param_index(var) >= 0) {
          if (!info_.is_dirty(var)) info_.dirty_params.push_back(var);
          warn("parameter " + var->name +
               " is reassigned; its transfer function degrades to Σ*");
        } else if (auto it = aliases.find(var); it != aliases.end()) {
          if (auto rp = resolve(val, aliases)) {
            it->second =
                AliasInfo{AliasInfo::Kind::Derived, rp->root, rp->path};
          } else {
            it->second = AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
          }
        } else {
          VarRef r;
          r.var = var;
          r.is_write = true;
          r.form = form;
          r.stmt_index = cur_stmt_;
          if (val.is(Kind::Cons) && car(val).is(Kind::Symbol)) {
            for (Value a = cdr(val); !a.is_nil(); a = cdr(a)) {
              if (car(a).is(Kind::Symbol) &&
                  static_cast<Symbol*>(car(a).obj()) == var) {
                r.update_op = as_symbol(car(val));
                break;
              }
            }
          }
          info_.var_refs.push_back(r);
        }
        continue;
      }

      if (place.is(Kind::Cons) && car(place).is(Kind::Symbol)) {
        const std::string& pname = as_symbol(car(place))->name;
        if (pname == "gethash") {
          // Hash tables are internally synchronized (§3.2.3): no
          // ordering constraint; walk the subforms for reads.
          for (Value sub = cdr(place); !sub.is_nil(); sub = cdr(sub))
            walk(car(sub), aliases, Pos::Value);
          continue;
        }
        if (pname == "aref") {
          // (setf (aref v i) val): an array element write, analyzed
          // with FORTRAN-style subscripts (§2).
          if (cadr(place).is(Kind::Symbol)) {
            note_array_ref(place, /*is_write=*/true, aliases);
          } else {
            defeat("cannot attribute array write " +
                   sexpr::write_str(place) + " to a variable");
          }
          walk(caddr(place), aliases, Pos::Value);
          continue;
        }
      }

      if (auto rp = resolve(place, aliases)) {
        // Detect the update-operator shape (setf P (op ... P ...)) —
        // the candidate for the paper's reordering transformation.
        Symbol* update_op = nullptr;
        if (val.is(Kind::Cons) && car(val).is(Kind::Symbol)) {
          for (Value a = cdr(val); !a.is_nil(); a = cdr(a)) {
            if (sexpr::equal_values(car(a), place)) {
              update_op = as_symbol(car(val));
              break;
            }
          }
        }
        note_write(*rp, form, /*deep=*/false, update_op);
        note_store_value(val, *rp, aliases);
        continue;
      }

      // Unresolvable place: fine if rooted at an unpromoted fresh cell,
      // fatal otherwise.
      Value base = place;
      while (base.is(Kind::Cons)) base = cadr(base);
      bool fresh_base = false;
      if (base.is(Kind::Symbol)) {
        auto it = aliases.find(static_cast<Symbol*>(base.obj()));
        fresh_base = it != aliases.end() &&
                     it->second.kind == AliasInfo::Kind::Fresh &&
                     (!pass2_ ||
                      !promotions_.contains(
                          static_cast<Symbol*>(base.obj())));
      }
      if (!fresh_base) {
        defeat("cannot attribute write " + sexpr::write_str(place) +
               " to a parameter; declare the aliasing or restructure");
      }
    }
    return;
  }

  if (op == "while") {
    walk(cadr(form), aliases, Pos::Value);
    AliasMap scoped = aliases;
    walk_seq(cddr(form), scoped, Pos::Stmt);
    return;
  }

  if (op == "dotimes" || op == "dolist") {
    Value spec = cadr(form);
    walk(cadr(spec), aliases, Pos::Value);
    AliasMap inner = aliases;
    Symbol* var = as_symbol(car(spec));
    // dolist variable walks list elements — a deep alias we cannot name;
    // dotimes variable is a number. Either way: Unknown is sound.
    inner[var] = AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
    if (op == "dolist") {
      if (auto rp = resolve(cadr(spec), aliases))
        note_read(*rp, cadr(spec), /*deep=*/true);
    }
    walk_seq(cddr(form), inner, Pos::Stmt);
    return;
  }

  if (op == "future") {
    walk(cadr(form), aliases, Pos::Value);
    return;
  }

  if (op == "defstruct") return;  // type definition, no accesses

  if (op == "incf" || op == "decf" || op == "push" || op == "pop") {
    // setf macros: analyze as the equivalent (setf PLACE (op … PLACE)).
    Value place = (op == "push") ? caddr(form) : cadr(form);
    Value extra = (op == "push") ? cadr(form)
                  : (op == "incf" || op == "decf")
                      ? (cddr(form).is_nil() ? Value::nil() : caddr(form))
                      : Value::nil();
    if (!extra.is_nil() || op == "push") walk(extra, aliases, Pos::Value);

    Symbol* update_op = nullptr;
    // incf AND decf are additive updates (v −= k is v += −k), and any
    // sequence of additive updates commutes — so both carry + as their
    // update operator for the reordering licence.
    if (op == "incf" || op == "decf")
      update_op = ctx_.symbols.intern("+");
    if (op == "push") update_op = ctx_.symbols.intern("push");

    if (place.is(Kind::Symbol)) {
      Symbol* var = static_cast<Symbol*>(place.obj());
      if (info_.param_index(var) >= 0) {
        if (!info_.is_dirty(var)) info_.dirty_params.push_back(var);
        warn("parameter " + var->name + " is reassigned (by " + op +
             "); its transfer function degrades to Σ*");
      } else if (!aliases.contains(var)) {
        VarRef read;
        read.var = var;
        read.form = form;
        read.stmt_index = cur_stmt_;
        info_.var_refs.push_back(read);
        VarRef write = read;
        write.is_write = true;
        write.update_op = update_op;
        info_.var_refs.push_back(write);
      } else {
        // A tracked local is rebound to an unknown derivation.
        aliases[var] = AliasInfo{AliasInfo::Kind::Unknown, nullptr, {}};
      }
      return;
    }
    if (auto rp = resolve(place, aliases)) {
      note_read(*rp, form, /*deep=*/false);
      note_write(*rp, form, /*deep=*/false, update_op);
      return;
    }
    defeat("cannot attribute " + op + " place " +
           sexpr::write_str(place) + " to a parameter");
    return;
  }
}

void Extractor::walk_call(Symbol* op, Value form, AliasMap& aliases,
                          Pos pos) {
  // Self-recursive call?
  if (op == info_.name) {
    RecCall call;
    call.form = form;
    call.stmt_index = cur_stmt_;
    call.site_index = static_cast<int>(info_.rec_calls.size());
    call.result_used = (pos == Pos::Value);
    std::size_t i = 0;
    for (Value a = cdr(form); !a.is_nil(); a = cdr(a), ++i) {
      Value arg = car(a);
      walk(arg, aliases, Pos::Value);
      std::optional<FieldPath> path;
      if (i < info_.params.size()) {
        if (auto rp = resolve(arg, aliases)) {
          if (rp->root == info_.params[i])
            path = rp->path.canonicalize(decls_);
        }
      }
      call.arg_paths.push_back(std::move(path));
    }
    while (call.arg_paths.size() < info_.params.size())
      call.arg_paths.emplace_back(std::nullopt);
    info_.rec_calls.push_back(std::move(call));
    return;
  }

  // Interprocedural summaries sharpen calls to other user functions
  // (declared any-search ops stay read-only via the generic path).
  if (const FnSummary* s =
          (summaries_ != nullptr && !decls_.is_any_search(op))
              ? summaries_->lookup(op)
              : nullptr) {
    // Merge the callee's global traffic so conflict detection sees it.
    for (Symbol* g : s->global_reads) {
      VarRef r;
      r.var = g;
      r.form = form;
      r.stmt_index = cur_stmt_;
      info_.var_refs.push_back(r);
    }
    for (Symbol* g : s->global_writes) {
      VarRef r;
      r.var = g;
      r.is_write = true;
      r.form = form;
      r.stmt_index = cur_stmt_;
      info_.var_refs.push_back(r);
    }
    switch (s->effect) {
      case FnEffect::Pure:
        for (Value a = cdr(form); !a.is_nil(); a = cdr(a))
          walk(car(a), aliases, Pos::Value);
        return;
      case FnEffect::DeepRead:
        for (Value a = cdr(form); !a.is_nil(); a = cdr(a)) {
          Value arg = car(a);
          if (auto rp = resolve(arg, aliases)) {
            note_read(*rp, arg, /*deep=*/true);
          } else {
            walk(arg, aliases, Pos::Value);
          }
        }
        return;
      case FnEffect::DeepWrite:
        for (Value a = cdr(form); !a.is_nil(); a = cdr(a)) {
          Value arg = car(a);
          if (auto rp = resolve(arg, aliases)) {
            note_read(*rp, arg, /*deep=*/true);
            note_write(*rp, arg, /*deep=*/true, nullptr);
          } else {
            walk(arg, aliases, Pos::Value);
          }
        }
        return;
      case FnEffect::Opaque:
        defeat("call to " + op->name +
               ", whose body defeats analysis (set/eval)");
        return;
    }
  }

  const BuiltinEffect eff =
      decls_.is_any_search(op) ? BuiltinEffect::DeepRead : builtin_effect(op->name);

  switch (eff) {
    case BuiltinEffect::Pure:
      for (Value a = cdr(form); !a.is_nil(); a = cdr(a))
        walk(car(a), aliases, Pos::Value);
      return;

    case BuiltinEffect::DeepRead:
      for (Value a = cdr(form); !a.is_nil(); a = cdr(a)) {
        Value arg = car(a);
        if (auto rp = resolve(arg, aliases)) {
          note_read(*rp, arg, /*deep=*/true);
        } else {
          walk(arg, aliases, Pos::Value);
        }
      }
      return;

    case BuiltinEffect::WriteCar:
    case BuiltinEffect::WriteCdr: {
      Value target = cadr(form);
      Field f = (eff == BuiltinEffect::WriteCar) ? ctx_.s_car : ctx_.s_cdr;
      if (auto rp = resolve(target, aliases)) {
        ResolvedPath loc{rp->root, rp->path.then(f)};
        note_write(loc, form, /*deep=*/false, nullptr);
        note_store_value(caddr(form), loc, aliases);
      } else if (target.is(Kind::Symbol) &&
                 aliases.contains(static_cast<Symbol*>(target.obj())) &&
                 aliases.at(static_cast<Symbol*>(target.obj())).kind ==
                     AliasInfo::Kind::Fresh) {
        // Write through an unpromoted fresh cell: local, no conflict.
      } else {
        defeat("cannot attribute write " + sexpr::write_str(form) +
               " to a parameter; declare the aliasing or restructure");
      }
      walk(caddr(form), aliases, Pos::Value);
      return;
    }

    case BuiltinEffect::DeepWrite:
      for (Value a = cdr(form); !a.is_nil(); a = cdr(a)) {
        Value arg = car(a);
        if (auto rp = resolve(arg, aliases)) {
          note_write(*rp, arg, /*deep=*/true, nullptr);
        } else {
          walk(arg, aliases, Pos::Value);
        }
      }
      return;

    case BuiltinEffect::Opaque:
      defeat("use of " + op->name +
             " defeats the analysis (paper §2); the worst case is "
             "assumed");
      return;

    case BuiltinEffect::HigherOrder: {
      // mapcar/funcall/apply/reduce, or an unknown user function. If a
      // function argument is a literal lambda we walk its body; tracked
      // list arguments are treated as deeply read AND deeply written
      // unless the callee is declared an any-search (pure) operation.
      warn("call to " + op->name +
           " treated conservatively (deep read+write of its arguments); "
           "a declaration could sharpen this");
      for (Value a = cdr(form); !a.is_nil(); a = cdr(a)) {
        Value arg = car(a);
        if (arg.is(Kind::Cons) && car(arg).is(Kind::Symbol) &&
            as_symbol(car(arg))->name == "lambda") {
          walk(arg, aliases, Pos::Value);
          continue;
        }
        if (auto rp = resolve(arg, aliases)) {
          note_read(*rp, arg, /*deep=*/true);
          note_write(*rp, arg, /*deep=*/true, nullptr);
        } else {
          walk(arg, aliases, Pos::Value);
        }
      }
      return;
    }
  }
}

}  // namespace

std::optional<ResolvedPath> resolve_accessor(sexpr::Ctx& ctx, Value expr) {
  // Public helper: resolve with every symbol treated as a root.
  decl::Declarations empty(ctx);
  FunctionInfo dummy;
  Extractor ex(ctx, empty, dummy);
  AliasMap roots;
  // Collect every symbol appearing as a base in the chain.
  Value base = expr;
  while (base.is(Kind::Cons)) base = cadr(base);
  if (base.is(Kind::Symbol)) {
    roots[static_cast<Symbol*>(base.obj())] =
        AliasInfo{AliasInfo::Kind::Root, static_cast<Symbol*>(base.obj()),
                  {}};
  }
  return ex.resolve(expr, roots);
}

FunctionInfo extract_function(sexpr::Ctx& ctx,
                              const decl::Declarations& decls,
                              Value defun_form,
                              const SummaryMap* summaries) {
  if (!defun_form.is(Kind::Cons) || !car(defun_form).is(Kind::Symbol) ||
      as_symbol(car(defun_form))->name != "defun") {
    throw LispError("extract_function: expected a defun form, got " +
                    sexpr::write_str(defun_form));
  }
  FunctionInfo info;
  info.name = as_symbol(cadr(defun_form));
  info.defun_form = defun_form;
  for (Value p = caddr(defun_form); !p.is_nil(); p = cdr(p)) {
    Symbol* s = as_symbol(car(p));
    if (s->name == "&rest" || s->name == "&optional") {
      info.warnings.push_back(
          "lambda-list keyword " + s->name +
          " is not analyzed; trailing parameters are ignored");
      break;
    }
    info.params.push_back(s);
  }
  // Body, skipping leading (declare ...) forms.
  Value body = cdr(sexpr::cddr(defun_form));
  while (body.is(Kind::Cons) && car(body).is(Kind::Cons) &&
         car(car(body)).is(Kind::Symbol) &&
         as_symbol(car(car(body)))->name == "declare") {
    body = cdr(body);
  }
  info.body = body;

  Extractor ex(ctx, decls, info, summaries);
  ex.run();
  return info;
}

}  // namespace curare::analysis
