#include "analysis/effects.hpp"

#include <unordered_map>

namespace curare::analysis {

BuiltinEffect builtin_effect(const std::string& name) {
  static const std::unordered_map<std::string, BuiltinEffect> table = {
      // Pure predicates, arithmetic, constructors.
      {"eq", BuiltinEffect::Pure}, {"eql", BuiltinEffect::Pure}, {"null", BuiltinEffect::Pure},
      {"not", BuiltinEffect::Pure}, {"atom", BuiltinEffect::Pure},
      {"consp", BuiltinEffect::Pure}, {"listp", BuiltinEffect::Pure},
      {"symbolp", BuiltinEffect::Pure}, {"numberp", BuiltinEffect::Pure},
      {"stringp", BuiltinEffect::Pure}, {"functionp", BuiltinEffect::Pure},
      {"zerop", BuiltinEffect::Pure}, {"plusp", BuiltinEffect::Pure},
      {"minusp", BuiltinEffect::Pure}, {"evenp", BuiltinEffect::Pure},
      {"oddp", BuiltinEffect::Pure}, {"+", BuiltinEffect::Pure}, {"-", BuiltinEffect::Pure},
      {"*", BuiltinEffect::Pure}, {"/", BuiltinEffect::Pure}, {"mod", BuiltinEffect::Pure},
      {"rem", BuiltinEffect::Pure}, {"1+", BuiltinEffect::Pure}, {"1-", BuiltinEffect::Pure},
      {"min", BuiltinEffect::Pure}, {"max", BuiltinEffect::Pure}, {"abs", BuiltinEffect::Pure},
      {"sqrt", BuiltinEffect::Pure}, {"expt", BuiltinEffect::Pure},
      {"floor", BuiltinEffect::Pure}, {"truncate", BuiltinEffect::Pure},
      {"=", BuiltinEffect::Pure}, {"/=", BuiltinEffect::Pure}, {"<", BuiltinEffect::Pure},
      {">", BuiltinEffect::Pure}, {"<=", BuiltinEffect::Pure}, {">=", BuiltinEffect::Pure},
      {"cons", BuiltinEffect::Pure}, {"list", BuiltinEffect::Pure},
      {"list*", BuiltinEffect::Pure}, {"gensym", BuiltinEffect::Pure},
      {"make-hash-table", BuiltinEffect::Pure}, {"make-array", BuiltinEffect::Pure},
      {"gethash", BuiltinEffect::Pure}, {"puthash", BuiltinEffect::Pure},
      {"remhash", BuiltinEffect::Pure}, {"hash-table-count", BuiltinEffect::Pure},
      {"aref", BuiltinEffect::Pure}, {"symbol-name", BuiltinEffect::Pure},
      {"intern", BuiltinEffect::Pure}, {"string=", BuiltinEffect::Pure},
      {"concat", BuiltinEffect::Pure}, {"identity", BuiltinEffect::Pure},
      {"random", BuiltinEffect::Pure}, {"error", BuiltinEffect::Pure},
      {"terpri", BuiltinEffect::Pure}, {"touch", BuiltinEffect::Pure},
      {"get-internal-real-time", BuiltinEffect::Pure},
      // Deep readers: traverse their list arguments.
      {"print", BuiltinEffect::DeepRead}, {"princ", BuiltinEffect::DeepRead},
      {"prin1", BuiltinEffect::DeepRead}, {"equal", BuiltinEffect::DeepRead},
      {"length", BuiltinEffect::DeepRead}, {"member", BuiltinEffect::DeepRead},
      {"assoc", BuiltinEffect::DeepRead}, {"reverse", BuiltinEffect::DeepRead},
      {"append", BuiltinEffect::DeepRead}, {"copy-list", BuiltinEffect::DeepRead},
      {"copy-tree", BuiltinEffect::DeepRead}, {"last", BuiltinEffect::DeepRead},
      // Field writers.
      {"rplaca", BuiltinEffect::WriteCar}, {"rplacd", BuiltinEffect::WriteCdr},
      // Destructive list operations.
      {"nreverse", BuiltinEffect::DeepWrite}, {"sort", BuiltinEffect::DeepWrite},
      // Analysis killers (paper §2: "the set and eval functions
      // frustrate this analysis").
      {"set", BuiltinEffect::Opaque}, {"eval", BuiltinEffect::Opaque},
      // Higher-order: effect depends on the function argument.
      {"mapcar", BuiltinEffect::HigherOrder}, {"mapc", BuiltinEffect::HigherOrder},
      {"reduce", BuiltinEffect::HigherOrder}, {"apply", BuiltinEffect::HigherOrder},
      {"funcall", BuiltinEffect::HigherOrder},
      // Curare-generated synchronization primitives: internally
      // synchronized, so they impose no ordering constraints of their
      // own (that is their whole point). Their argument expressions are
      // still walked for reads.
      {"%lock", BuiltinEffect::Pure}, {"%unlock", BuiltinEffect::Pure},
      {"%lock-var", BuiltinEffect::Pure}, {"%unlock-var", BuiltinEffect::Pure},
      {"%atomic-add", BuiltinEffect::Pure}, {"%atomic-incf-var", BuiltinEffect::Pure},
      {"%locked-update", BuiltinEffect::Pure},
      {"%locked-update-var", BuiltinEffect::Pure},
      {"%cri-enqueue", BuiltinEffect::Pure}, {"%cri-run", BuiltinEffect::Pure},
      {"%cri-finish", BuiltinEffect::Pure},
      {"spawn", BuiltinEffect::Pure}, {"force-tree", BuiltinEffect::DeepRead},
      {"future-p", BuiltinEffect::Pure},
  };
  auto it = table.find(name);
  return it == table.end() ? BuiltinEffect::HigherOrder /*unknown user fn*/
                           : it->second;
}

}  // namespace curare::analysis
