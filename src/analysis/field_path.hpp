// Accessor paths (paper §2.1).
//
// "The accessor A(P) of a path P is the ordered sequence of fields along
// the elements of the path." A FieldPath is that sequence, stored in
// application order: (cadr l) = car(cdr(l)) traverses cdr first, so its
// path is [cdr, car], printed "cdr.car" exactly as the paper writes it.
//
// Canonicalization (paper's C function) removes adjacent declared
// inverse-field pairs — succ.pred and pred.succ collapse — until no pair
// remains, reducing the infinite path family of a doubly-linked structure
// to unique representatives.
#pragma once

#include <string>
#include <vector>

#include "decl/declarations.hpp"
#include "sexpr/value.hpp"

namespace curare::analysis {

using Field = sexpr::Symbol*;

class FieldPath {
 public:
  FieldPath() = default;
  explicit FieldPath(std::vector<Field> fields)
      : fields_(std::move(fields)) {}

  static FieldPath empty() { return FieldPath(); }

  bool is_empty() const { return fields_.empty(); }
  std::size_t size() const { return fields_.size(); }
  Field operator[](std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Extend by one more dereference (applied after this path).
  FieldPath then(Field f) const {
    std::vector<Field> v = fields_;
    v.push_back(f);
    return FieldPath(std::move(v));
  }

  /// Concatenation: this path followed by `tail`.
  FieldPath then(const FieldPath& tail) const {
    std::vector<Field> v = fields_;
    v.insert(v.end(), tail.fields_.begin(), tail.fields_.end());
    return FieldPath(std::move(v));
  }

  /// The paper's prefix operator ≤: true when this path is a prefix of
  /// (or equal to) `other` — i.e. this path's destination lies on
  /// `other`'s traversal.
  bool prefix_of(const FieldPath& other) const {
    if (size() > other.size()) return false;
    for (std::size_t i = 0; i < size(); ++i)
      if (fields_[i] != other.fields_[i]) return false;
    return true;
  }

  /// n-fold self-concatenation (used for τ^d with word-shaped τ).
  FieldPath repeated(std::size_t n) const {
    std::vector<Field> v;
    v.reserve(n * size());
    for (std::size_t i = 0; i < n; ++i)
      v.insert(v.end(), fields_.begin(), fields_.end());
    return FieldPath(std::move(v));
  }

  /// Canonicalize under the declared inverse pairs: repeatedly delete
  /// adjacent (f, inverse(f)) pairs. A single left-to-right pass with a
  /// stack reaches the fixpoint.
  FieldPath canonicalize(const decl::Declarations& decls) const {
    std::vector<Field> out;
    for (Field f : fields_) {
      if (!out.empty() && decls.inverse_of(out.back()) == f) {
        out.pop_back();
      } else {
        out.push_back(f);
      }
    }
    return FieldPath(std::move(out));
  }

  /// "cdr.car" notation; empty path prints as "ε".
  std::string to_string() const {
    if (fields_.empty()) return "ε";
    std::string s;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) s += '.';
      s += fields_[i]->name;
    }
    return s;
  }

  friend bool operator==(const FieldPath& a, const FieldPath& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace curare::analysis
