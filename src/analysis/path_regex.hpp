// Regular expressions over field alphabets (paper §2.1–2.2).
//
// "List accesses are strings in the language {car, cdr}+. Transfer
// functions are regular expressions over the alphabet {car, cdr}."
//
// The paper's conflict test reduces to prefix queries between a concrete
// accessor word and the language of a regex:
//
//   A1 ⊙ A2 under τ at distance d  ⟺  A1 ≤ some word of L(τ^d · A2)
//
// so beyond plain membership the NFA answers two prefix queries:
//
//   word_is_prefix_of_language(w)  —  ∃x ∈ L : w ≤ x
//   language_has_prefix_of_word(w) —  ∃x ∈ L : x ≤ w
//
// Both run in O(|w| · states) by NFA simulation (no DFA construction
// needed; programs produce tiny regexes).
//
// The `any` wildcard (Σ) matches every field, so the paper's "τ = A*"
// worst case for unanalyzable variables is star(any()).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/field_path.hpp"

namespace curare::analysis {

class PathRegex;
using RegexPtr = std::shared_ptr<const PathRegex>;

class PathRegex {
 public:
  enum class Op { Epsilon, Literal, Any, Concat, Alt, Star };

  static RegexPtr epsilon();
  static RegexPtr literal(Field f);
  static RegexPtr any();
  /// Word regex: concatenation of the path's fields; ε for empty path.
  static RegexPtr word(const FieldPath& path);
  static RegexPtr concat(std::vector<RegexPtr> parts);
  static RegexPtr concat(RegexPtr a, RegexPtr b) {
    return concat(std::vector<RegexPtr>{std::move(a), std::move(b)});
  }
  static RegexPtr alt(std::vector<RegexPtr> parts);
  static RegexPtr star(RegexPtr r);
  /// r+ = r · r*
  static RegexPtr plus(RegexPtr r);
  /// r^n: n-fold concatenation (τ^d); epsilon when n is 0.
  static RegexPtr power(const RegexPtr& r, std::size_t n);
  /// Σ* — the worst-case transfer function for unknown variables.
  static RegexPtr any_star() { return star(any()); }

  Op op() const { return op_; }
  Field lit() const { return lit_; }
  const std::vector<RegexPtr>& children() const { return children_; }

  std::string to_string() const;

 protected:
  // Construction goes through the factories; protected so the factory
  // helper can derive and forward.
  PathRegex(Op op, Field lit, std::vector<RegexPtr> children)
      : op_(op), lit_(lit), children_(std::move(children)) {}

  Op op_;
  Field lit_;
  std::vector<RegexPtr> children_;
};

/// Thompson NFA compiled from a PathRegex.
class Nfa {
 public:
  explicit Nfa(const RegexPtr& regex);

  /// word ∈ L?
  bool matches(const FieldPath& word) const;

  /// ∃x ∈ L : word is a prefix of x (or equal)?
  bool word_is_prefix_of_language(const FieldPath& word) const;

  /// ∃x ∈ L : x is a prefix of word (or equal)?
  bool language_has_prefix_of_word(const FieldPath& word) const;

  std::size_t state_count() const { return states_.size(); }

 private:
  struct Edge {
    enum class Type { Eps, Any, Lit };
    Type type;
    Field lit;  // valid for Lit
    int to;
  };

  int new_state();
  /// Build the fragment for `r`, returning (entry, exit) states.
  std::pair<int, int> build(const PathRegex& r);
  void eps_closure(std::vector<bool>& set) const;
  std::vector<bool> step(const std::vector<bool>& set, Field f) const;

  std::vector<std::vector<Edge>> states_;
  int start_ = -1;
  int accept_ = -1;
  std::vector<bool> can_reach_accept_;
};

}  // namespace curare::analysis
