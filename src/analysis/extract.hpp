// Extraction of the analysis IR from a defun form.
#pragma once

#include "analysis/function_info.hpp"
#include "analysis/summary.hpp"
#include "decl/declarations.hpp"
#include "sexpr/ctx.hpp"

namespace curare::analysis {

/// Walk a (defun name (params...) body...) form and build its
/// FunctionInfo. Throws LispError if the form is not a defun.
/// `summaries` (optional) supplies interprocedural effect summaries for
/// other user functions; without it every unknown call is worst-cased.
FunctionInfo extract_function(sexpr::Ctx& ctx,
                              const decl::Declarations& decls,
                              Value defun_form,
                              const SummaryMap* summaries = nullptr);

/// Resolve an expression to a pure accessor chain over a tracked root:
/// (cadr l) → (l, [cdr, car]). Used by the extractor and by transforms
/// that need to name the location a setf writes. Only car/cdr
/// compositions, nth/nthcdr with literal indexes, and declared structure
/// accessors resolve. Returns nullopt otherwise.
struct ResolvedPath {
  Symbol* root;
  FieldPath path;
};
std::optional<ResolvedPath> resolve_accessor(sexpr::Ctx& ctx, Value expr);

}  // namespace curare::analysis
