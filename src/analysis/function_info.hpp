// Analysis IR for one recursive function (paper §2–3).
//
// The extractor walks a defun and produces:
//   * StructRef — every structure access/modification, as the paper's
//     (accessor, instance) pairs: a root parameter plus a FieldPath.
//     `deep` marks references that touch everything reachable below the
//     path (print traverses its argument; a call to an unanalyzed
//     function might read or write anywhere below).
//   * RecCall — every self-recursive call site, with the accessor path
//     each argument applies to its parameter (the raw material of the
//     transfer function τ).
//   * warnings — the paper's §6 feedback: what stopped the analysis and
//     what declaration would unblock it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/array.hpp"
#include "analysis/field_path.hpp"
#include "analysis/path_regex.hpp"
#include "sexpr/ctx.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/value.hpp"

namespace curare::analysis {

using sexpr::Symbol;
using sexpr::Value;

struct StructRef {
  Symbol* root = nullptr;  ///< parameter the path is rooted at
  FieldPath path;
  bool is_write = false;
  bool deep = false;       ///< touches the whole substructure below path
  Value form;              ///< source expression, for reporting
  int stmt_index = -1;     ///< pre-order statement id
  /// When the write has the shape (setf P (op ... P ...)), the update
  /// operator — the candidate for the reordering transformation.
  Symbol* update_op = nullptr;

  std::string to_string() const {
    std::string s = root ? root->name : "?";
    if (!path.is_empty()) s += "." + path.to_string();
    if (is_write) s += " [write]";
    if (deep) s += " [deep]";
    return s;
  }
};

/// A read or write of a free (global) variable inside the function body.
/// Conflicts among these are the paper's "conflicts among uses of
/// variables" — easy to detect, and at distance 1 (every pair of
/// invocations touches the same cell).
struct VarRef {
  Symbol* var = nullptr;
  bool is_write = false;
  Value form;
  int stmt_index = -1;
  /// For writes of the shape (setq v (op ... v ...)): the update
  /// operator (Fig. 8's reorderable increment).
  Symbol* update_op = nullptr;
};

struct RecCall {
  Value form;
  int stmt_index = -1;
  int site_index = -1;     ///< 0-based call-site number in source order
  bool result_used = false;  ///< not a "free call" (paper §3.1)
  /// Per parameter: the accessor path the argument applies to that same
  /// parameter, or nullopt when the argument is not such an accessor
  /// (worst case τ = Σ* for that parameter).
  std::vector<std::optional<FieldPath>> arg_paths;
};

struct FunctionInfo {
  Symbol* name = nullptr;
  std::vector<Symbol*> params;
  Value defun_form;
  Value body;  ///< list of body forms (declares skipped)

  std::vector<StructRef> refs;
  std::vector<VarRef> var_refs;
  std::vector<ArrayRef> array_refs;
  std::vector<RecCall> rec_calls;

  /// Parameters that are reassigned (setq) in the body — their transfer
  /// functions degrade to Σ*.
  std::vector<Symbol*> dirty_params;

  std::vector<std::string> warnings;
  bool analyzable = true;  ///< false => worst-case everywhere (set/eval…)

  bool is_recursive() const { return !rec_calls.empty(); }

  bool is_dirty(Symbol* p) const {
    for (Symbol* d : dirty_params)
      if (d == p) return true;
    return false;
  }

  int param_index(Symbol* p) const {
    for (std::size_t i = 0; i < params.size(); ++i)
      if (params[i] == p) return static_cast<int>(i);
    return -1;
  }

  /// The single-step transfer function τ_p for parameter p: the
  /// alternation over call sites of the argument accessor, Σ* when any
  /// site passes something unanalyzable or p is dirty (paper §2.1).
  /// Returns nullptr when the function has no recursive calls.
  RegexPtr step_transfer(Symbol* p) const {
    if (rec_calls.empty()) return nullptr;
    const int idx = param_index(p);
    if (idx < 0) return nullptr;
    if (!analyzable || is_dirty(p)) return PathRegex::any_star();
    std::vector<RegexPtr> alts;
    for (const RecCall& c : rec_calls) {
      const auto& ap = c.arg_paths[static_cast<std::size_t>(idx)];
      if (!ap.has_value()) return PathRegex::any_star();
      alts.push_back(PathRegex::word(*ap));
    }
    return PathRegex::alt(std::move(alts));
  }

  /// τ_p as the paper writes it for reporting: a⁺ for the single-site
  /// case, (a1|a2|…)⁺ in general.
  RegexPtr transfer_closure(Symbol* p) const {
    RegexPtr step = step_transfer(p);
    return step ? PathRegex::plus(step) : nullptr;
  }

  /// The constant per-invocation step δ of an induction parameter (the
  /// FORTRAN-style numeric analogue of τ): (f … (+ n δ) …) at every call
  /// site. nullopt when any site steps non-affinely or sites disagree.
  std::optional<std::int64_t> induction_step(sexpr::Ctx& ctx,
                                             Symbol* p) const {
    const int idx = param_index(p);
    if (idx < 0 || rec_calls.empty() || is_dirty(p)) return std::nullopt;
    std::optional<std::int64_t> step;
    for (const RecCall& c : rec_calls) {
      Value arg = sexpr::nth(sexpr::cdr(c.form),
                             static_cast<std::size_t>(idx));
      auto aff = parse_affine(ctx, arg);
      if (!aff || aff->var != p || aff->coef != 1) return std::nullopt;
      if (step && *step != aff->offset) return std::nullopt;
      step = aff->offset;
    }
    return step;
  }
};

}  // namespace curare::analysis
