#include "analysis/summary.hpp"

#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"

namespace curare::analysis {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::caddr;
using sexpr::cddr;
using sexpr::cdr;
using sexpr::Kind;

const char* fn_effect_name(FnEffect e) {
  switch (e) {
    case FnEffect::Pure: return "pure";
    case FnEffect::DeepRead: return "read-only";
    case FnEffect::DeepWrite: return "may-write";
    case FnEffect::Opaque: return "opaque";
  }
  return "?";
}

std::string FnSummary::to_string() const {
  std::string s = fn_effect_name(effect);
  if (!global_reads.empty()) {
    s += "; reads globals:";
    for (Symbol* g : global_reads) s += " " + g->name;
  }
  if (!global_writes.empty()) {
    s += "; writes globals:";
    for (Symbol* g : global_writes) s += " " + g->name;
  }
  return s;
}

namespace {

FnEffect join(FnEffect a, FnEffect b) { return a > b ? a : b; }

/// One pass of the summary scanner over a function body.
bool is_cxr_name(const std::string& name) {
  if (name.size() < 3 || name.front() != 'c' || name.back() != 'r')
    return false;
  for (std::size_t i = 1; i + 1 < name.size(); ++i)
    if (name[i] != 'a' && name[i] != 'd') return false;
  return true;
}

class Scanner {
 public:
  Scanner(const decl::Declarations& decls, const SummaryMap& current,
          FnSummary& out)
      : decls_(decls), current_(current), out_(out) {}

  void scan_defun(Value defun) {
    // Locals: parameters; let/lambda/loop bindings are added as seen.
    for (Value p = caddr(defun); !p.is_nil(); p = cdr(p)) {
      if (sexpr::car(p).is(Kind::Symbol))
        locals_.insert(static_cast<Symbol*>(sexpr::car(p).obj()));
    }
    for (Value b = cdr(cddr(defun)); !b.is_nil(); b = cdr(b))
      scan(sexpr::car(b));
  }

 private:
  void raise(FnEffect e) { out_.effect = join(out_.effect, e); }

  void scan_seq(Value forms) {
    for (; !forms.is_nil(); forms = cdr(forms)) scan(sexpr::car(forms));
  }

  void scan(Value f) {
    if (f.is(Kind::Symbol)) {
      Symbol* s = static_cast<Symbol*>(f.obj());
      if (s->name != "t" && !locals_.contains(s))
        out_.global_reads.insert(s);
      return;
    }
    if (!f.is(Kind::Cons)) return;
    Value head = sexpr::car(f);
    if (!head.is(Kind::Symbol)) {
      raise(FnEffect::Opaque);  // computed operator
      return;
    }
    const std::string& op = as_symbol(head)->name;

    // ---- special forms --------------------------------------------------
    if (op == "quote" || op == "declare" || op == "defstruct") return;
    if (op == "progn" || op == "when" || op == "unless" || op == "and" ||
        op == "or" || op == "while" || op == "if" || op == "future") {
      scan_seq(cdr(f));
      return;
    }
    if (op == "cond") {
      for (Value cl = cdr(f); !cl.is_nil(); cl = cdr(cl))
        scan_seq(sexpr::car(cl));
      return;
    }
    if (op == "let" || op == "let*") {
      for (Value b = cadr(f); !b.is_nil(); b = cdr(b)) {
        Value binding = sexpr::car(b);
        if (binding.is(Kind::Symbol)) {
          locals_.insert(static_cast<Symbol*>(binding.obj()));
        } else {
          scan(cadr(binding));
          locals_.insert(as_symbol(sexpr::car(binding)));
        }
      }
      scan_seq(cddr(f));
      return;
    }
    if (op == "lambda") {
      for (Value p = cadr(f); !p.is_nil(); p = cdr(p)) {
        if (sexpr::car(p).is(Kind::Symbol))
          locals_.insert(static_cast<Symbol*>(sexpr::car(p).obj()));
      }
      scan_seq(cddr(f));
      return;
    }
    if (op == "dotimes" || op == "dolist") {
      Value spec = cadr(f);
      locals_.insert(as_symbol(sexpr::car(spec)));
      scan(cadr(spec));
      raise(op == "dolist" ? FnEffect::DeepRead : FnEffect::Pure);
      scan_seq(cddr(f));
      return;
    }
    if (op == "setq") {
      for (Value rest = cdr(f); !rest.is_nil(); rest = cddr(rest)) {
        Symbol* var = as_symbol(sexpr::car(rest));
        scan(cadr(rest));
        if (!locals_.contains(var)) out_.global_writes.insert(var);
      }
      return;
    }
    if (op == "setf" || op == "incf" || op == "decf" || op == "push" ||
        op == "pop") {
      Value place = (op == "push") ? caddr(f) : cadr(f);
      scan_seq(cdr(f));  // value/extra expressions (place rescanned ok)
      if (place.is(Kind::Symbol)) {
        Symbol* var = static_cast<Symbol*>(place.obj());
        if (!locals_.contains(var)) out_.global_writes.insert(var);
        if (op != "setf" && op != "push") {
          // incf/decf/pop also read the variable.
          if (!locals_.contains(var)) out_.global_reads.insert(var);
        }
      } else {
        // Writing through a place: may touch argument structure.
        raise(FnEffect::DeepWrite);
      }
      return;
    }
    if (op == "defun") {
      raise(FnEffect::Opaque);  // nested defuns are not summarized
      return;
    }

    // Accessor applications dereference their argument: the summary
    // cannot carry the precise path, so the sound abstraction is "reads
    // somewhere below its arguments" — DeepRead.
    if (is_cxr_name(op) || op == "nth" || op == "nthcdr" ||
        decls_.is_known_field(as_symbol(head))) {
      raise(FnEffect::DeepRead);
      scan_seq(cdr(f));
      return;
    }

    // ---- calls ------------------------------------------------------------
    Symbol* callee = as_symbol(head);
    if (const FnSummary* s = current_.lookup(callee)) {
      raise(s->effect);
      out_.global_reads.insert(s->global_reads.begin(),
                               s->global_reads.end());
      out_.global_writes.insert(s->global_writes.begin(),
                                s->global_writes.end());
    } else {
      switch (builtin_effect(op)) {
        case BuiltinEffect::Pure: break;
        case BuiltinEffect::DeepRead: raise(FnEffect::DeepRead); break;
        case BuiltinEffect::WriteCar:
        case BuiltinEffect::WriteCdr:
        case BuiltinEffect::DeepWrite: raise(FnEffect::DeepWrite); break;
        case BuiltinEffect::Opaque: raise(FnEffect::Opaque); break;
        case BuiltinEffect::HigherOrder:
          // Unknown function or applies one: worst case on arguments.
          raise(FnEffect::DeepWrite);
          break;
      }
    }
    scan_seq(cdr(f));
    return;
  }

  const decl::Declarations& decls_;
  const SummaryMap& current_;
  FnSummary& out_;
  std::unordered_set<Symbol*> locals_;
};

}  // namespace

SummaryMap compute_summaries(sexpr::Ctx& ctx,
                             const decl::Declarations& decls,
                             const std::vector<Value>& defuns) {
  (void)ctx;
  SummaryMap map;
  // Seed slots so recursive/mutual calls resolve optimistically.
  std::vector<Symbol*> names;
  for (Value d : defuns) {
    Symbol* name = as_symbol(cadr(d));
    map.slot(name) = FnSummary{};
    names.push_back(name);
  }

  // Monotone fixpoint: re-scan until nothing changes. The lattice has
  // height 4 per function plus the finite global sets, so this
  // terminates quickly.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (std::size_t i = 0; i < defuns.size(); ++i) {
      FnSummary fresh;
      Scanner scanner(decls, map, fresh);
      scanner.scan_defun(defuns[i]);
      FnSummary& slot = map.slot(names[i]);
      const bool grew =
          fresh.effect > slot.effect ||
          fresh.global_reads.size() != slot.global_reads.size() ||
          fresh.global_writes.size() != slot.global_writes.size();
      if (grew) {
        slot = std::move(fresh);
        changed = true;
      }
    }
  }
  return map;
}

}  // namespace curare::analysis
