#include "curare/struct_sapp.hpp"

#include <unordered_set>
#include <vector>

#include "lisp/structs.hpp"

namespace curare {

using lisp::Instance;
using sexpr::Kind;
using sexpr::Symbol;
using sexpr::Value;

StructSappResult check_struct_sapp(Value root,
                                   const decl::Declarations& decls) {
  StructSappResult result;
  std::unordered_set<const sexpr::Obj*> seen;

  struct Work {
    Value node;
    Symbol* arrived_by;  ///< field traversed to reach node (null = root)
  };
  std::vector<Work> stack{{root, nullptr}};

  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();

    if (w.node.is(Kind::Cons)) {
      auto* c = static_cast<sexpr::Cons*>(w.node.obj());
      if (!seen.insert(c).second) {
        result.holds = false;
        result.violation = "cons cell reachable along two canonical paths";
        return result;
      }
      stack.push_back({c->car(), nullptr});
      stack.push_back({c->cdr(), nullptr});
      continue;
    }

    if (!w.node.is(Kind::Struct)) continue;
    auto* inst = static_cast<Instance*>(w.node.obj());
    if (!seen.insert(inst).second) {
      result.holds = false;
      result.violation = "instance of " + inst->type->name->name +
                         " reachable along two canonical paths";
      return result;
    }
    ++result.instances;

    // The canonicalization: skip the inverse of the arriving edge. A
    // path …·f·inverse(f)·… is not canonical, so the back-edge does not
    // constitute a second path.
    Symbol* skip =
        w.arrived_by ? decls.inverse_of(w.arrived_by) : nullptr;
    for (Symbol* f : inst->type->pointer_fields) {
      if (f == skip) continue;
      const int idx = inst->type->slot_index(f);
      stack.push_back({inst->get(idx), f});
    }
    // Data fields may hold lists — follow them as plain values.
    for (Symbol* f : inst->type->data_fields) {
      const int idx = inst->type->slot_index(f);
      Value v = inst->get(idx);
      if (v.is(Kind::Cons) || v.is(Kind::Struct))
        stack.push_back({v, nullptr});
    }
  }
  return result;
}

}  // namespace curare
