#include "curare/curare.hpp"

#include <chrono>
#include <sstream>

#include "obs/request.hpp"
#include "runtime/scheduler.hpp"
#include "sexpr/list_ops.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "transform/build.hpp"
#include "transform/cri.hpp"
#include "transform/delay.hpp"
#include "transform/dps.hpp"
#include "transform/lock_insert.hpp"
#include "transform/rec2iter.hpp"
#include "transform/reorder.hpp"

namespace curare {

using sexpr::as_symbol;
using sexpr::cadr;
using sexpr::car;
using sexpr::Kind;
using sexpr::LispError;

std::string AnalysisReport::to_string() const {
  std::ostringstream out;
  out << "function " << info.name->name << " (";
  for (std::size_t i = 0; i < info.params.size(); ++i)
    out << (i ? " " : "") << info.params[i]->name;
  out << ")\n";
  out << "  recursive call sites: " << info.rec_calls.size() << "\n";
  for (const auto& [param, tau] : transfers)
    out << "  τ_" << param << " = " << tau << "\n";
  out << "  accessors:\n";
  for (const auto& r : info.refs) out << "    " << r.to_string() << "\n";
  for (const auto& v : info.var_refs) {
    out << "    " << v.var->name << (v.is_write ? " [write]" : "")
        << " [variable]\n";
  }
  out << "  head size " << headtail.head_size << ", tail size "
      << headtail.tail_size << ", concurrency (h+t)/h = "
      << headtail.concurrency() << "\n";
  if (conflicts.cross_param_aliasing)
    out << "  worst-case parameter aliasing assumed\n";
  out << "  conflicts: " << conflicts.conflicts.size() << "\n";
  for (const auto& c : conflicts.conflicts)
    out << "    " << c.describe() << "\n";
  for (const auto& w : info.warnings) out << "  note: " << w << "\n";
  return out.str();
}

std::string TransformPlan::to_string() const {
  std::ostringstream out;
  if (!ok) {
    out << "NOT transformed: " << failure << "\n";
    for (const auto& f : feedback) out << "  " << f << "\n";
    return out.str();
  }
  out << "transformed; entry " << (entry ? entry->name : "?");
  if (server != nullptr) {
    out << ", server " << server->name << ", " << num_sites
        << " call site(s)";
  } else {
    out << " (iterative replacement; no server pool)";
  }
  out << "\n";
  out << "  reordered " << reordered << ", delayed " << delayed
      << ", locks " << locks_inserted;
  if (used_rec2iter) out << ", via recursion→iteration";
  if (used_dps) out << ", via destination-passing style";
  out << "\n";
  if (concurrency_cap)
    out << "  concurrency capped at " << *concurrency_cap
        << " by conflict distance\n";
  for (const auto& f : feedback) out << "  " << f << "\n";
  return out.str();
}

Curare::Curare(sexpr::Ctx& ctx, std::size_t workers)
    : ctx_(ctx),
      interp_(ctx),
      vm_(std::make_unique<vm::Vm>(interp_)),
      owned_runtime_(
          std::make_unique<runtime::Runtime>(interp_, workers)),
      runtime_(owned_runtime_.get()),
      decls_(ctx) {
  runtime_->install();
  vm_->install_apply_hook();  // engine_ defaults to kVm
  ctx_.heap.gc().add_root_source(this);
}

Curare::Curare(sexpr::Ctx& ctx, runtime::Runtime& shared_runtime)
    : ctx_(ctx),
      interp_(ctx),
      vm_(std::make_unique<vm::Vm>(interp_)),
      runtime_(&shared_runtime),
      decls_(ctx) {
  // Same primitives, but bound to the shared lock manager / future
  // pool / recorder; %cri-run executes in *this* interpreter.
  runtime_->install_into(interp_);
  vm_->install_apply_hook();  // engine_ defaults to kVm
  ctx_.heap.gc().add_root_source(this);
}

void Curare::set_engine(EngineKind kind) {
  if (kind == engine_) return;
  engine_ = kind;
  if (kind == EngineKind::kVm)
    vm_->install_apply_hook();
  else
    vm_->uninstall_apply_hook();
}

Value Curare::eval_top(Value form) {
  return engine_ == EngineKind::kVm ? vm_->eval_top(form)
                                    : interp_.eval_top(form);
}

Value Curare::eval_program(std::string_view src) {
  return engine_ == EngineKind::kVm ? vm_->eval_program(src)
                                    : interp_.eval_program(src);
}

Curare::~Curare() { ctx_.heap.gc().remove_root_source(this); }

void Curare::gc_roots(std::vector<Value>& out) {
  out.insert(out.end(), program_forms_.begin(), program_forms_.end());
  for (const auto& [name, form] : defuns_) out.push_back(form);
  for (const auto& [name, plan] : plans_)
    out.insert(out.end(), plan.forms.begin(), plan.forms.end());
}

Value Curare::load_program(std::string_view src) {
  // One unsafe region for the whole load: the freshly read forms and
  // the containers under mutation stay out of the collector's sight.
  gc::MutatorScope gc_scope(ctx_.heap.gc());
  // Attribute reader vs. evaluator time to the current serving request
  // (no-ops outside one): read_all is the whole parse phase, the rest
  // of this function is eval.
  const auto t_parse0 = std::chrono::steady_clock::now();
  std::vector<Value> forms = sexpr::read_all(ctx_, src);
  const auto t_parse1 = std::chrono::steady_clock::now();
  obs::charge_request(
      &obs::Breakdown::parse_ns,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t_parse1 -
                                                               t_parse0)
              .count()));
  struct EvalCharge {
    std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    ~EvalCharge() {
      obs::charge_request(
          &obs::Breakdown::eval_ns,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()));
    }
  } eval_charge;
  decls_.load_program(forms);
  Value last = Value::nil();
  for (Value form : forms) {
    program_forms_.push_back(form);
    if (form.is(Kind::Cons) && car(form).is(Kind::Symbol)) {
      const std::string& head = as_symbol(car(form))->name;
      if (head == "curare-declare") continue;  // advice, not code
      if (head == "defun") defuns_[as_symbol(cadr(form))] = form;
    }
    last = eval_top(form);
    // defstruct feeds the analyzer too: its field classes ARE the §6
    // structure declaration.
    if (form.is(Kind::Cons) && car(form).is(Kind::Symbol) &&
        as_symbol(car(form))->name == "defstruct") {
      auto type = interp_.struct_type(as_symbol(cadr(form)));
      if (type) {
        decls_.declare_structure(type->name, type->pointer_fields,
                                 type->data_fields);
      }
    }
  }

  // Recompute interprocedural summaries over everything loaded so far.
  std::vector<Value> all_defuns;
  for (const auto& [name, form] : defuns_) all_defuns.push_back(form);
  summaries_ = analysis::compute_summaries(ctx_, decls_, all_defuns);
  return last;
}

void Curare::adopt_program_forms(const std::vector<Value>& forms) {
  // Mirrors load_program's bookkeeping minus every eval_top: the forms
  // were evaluated once in the template session and the clone installed
  // the resulting bindings wholesale.
  gc::MutatorScope gc_scope(ctx_.heap.gc());
  decls_.load_program(forms);
  for (Value form : forms) {
    program_forms_.push_back(form);
    if (!form.is(Kind::Cons) || !car(form).is(Kind::Symbol)) continue;
    const std::string& head = as_symbol(car(form))->name;
    if (head == "defun") {
      defuns_[as_symbol(cadr(form))] = form;
    } else if (head == "defstruct") {
      auto type = interp_.struct_type(as_symbol(cadr(form)));
      if (type) {
        decls_.declare_structure(type->name, type->pointer_fields,
                                 type->data_fields);
      }
    }
  }
  std::vector<Value> all_defuns;
  for (const auto& [name, form] : defuns_) all_defuns.push_back(form);
  summaries_ = analysis::compute_summaries(ctx_, decls_, all_defuns);
}

Value Curare::source_of(std::string_view fn_name) const {
  Symbol* name = ctx_.symbols.intern(fn_name);
  auto it = defuns_.find(name);
  if (it == defuns_.end())
    throw LispError("curare: no loaded defun named " + std::string(fn_name));
  return it->second;
}

analysis::FunctionInfo Curare::extract_named(std::string_view fn_name) {
  return analysis::extract_function(ctx_, decls_, source_of(fn_name),
                                    &summaries_);
}

AnalysisReport Curare::analyze(std::string_view fn_name) {
  // Analysis builds rewritten forms in C++ locals (FunctionInfo holds
  // Values); keep them safe from a concurrent collection.
  gc::MutatorScope gc_scope(ctx_.heap.gc());
  AnalysisReport report;
  report.info = extract_named(fn_name);
  report.conflicts = analysis::detect_conflicts(ctx_, decls_, report.info);
  report.headtail = analysis::partition_head_tail(ctx_, report.info);
  for (Symbol* p : report.info.params) {
    if (analysis::RegexPtr tau = report.info.transfer_closure(p))
      report.transfers.emplace_back(p->name, tau->to_string());
  }
  return report;
}

TransformPlan Curare::transform(std::string_view fn_name,
                                const TransformOptions& opts) {
  // Generated defuns pass through several C++ locals before they are
  // installed and rooted via plans_; keep the world running-but-uncollected
  // until then. (run_parallel is NOT wrapped — servers must be able to
  // stop the world mid-run.)
  gc::MutatorScope gc_scope(ctx_.heap.gc());
  TransformPlan plan;
  Symbol* name = ctx_.symbols.intern(fn_name);

  analysis::FunctionInfo info = extract_named(fn_name);
  if (auto hint = decls_.restructure_hint(name);
      hint.has_value() && !*hint) {
    plan.failure = "declared (no-restructure " + name->name + ")";
    return plan;
  }
  if (!info.is_recursive()) {
    plan.failure =
        "function is not self-recursive; CRI transforms recursive "
        "functions (paper §1.3)";
    return plan;
  }
  if (!info.analyzable) {
    plan.failure = "analysis defeated (set/eval or unattributable "
                   "write); see feedback";
    plan.feedback = info.warnings;
    return plan;
  }

  Value current = info.defun_form;
  bool dps_safe = false;
  Symbol* dps_dest = nullptr;

  // ---- §5 enabling transformations ------------------------------------
  bool result_used = false;
  for (const auto& c : info.rec_calls) result_used |= c.result_used;
  if (result_used) {
    if (opts.enable_rec2iter) {
      auto r2i = transform::apply_rec2iter(ctx_, decls_, info);
      if (r2i.ok) {
        plan.used_rec2iter = true;
        for (const auto& n : r2i.notes) plan.feedback.push_back(n);
        // The iterative replacement is not recursive at all: install it
        // and finish — it runs at memory bandwidth in a loop. (The CRI
        // pipeline continues only for DPS.)
        interp_.eval_top(r2i.defun);
        defuns_[name] = r2i.defun;
        plan.forms.push_back(r2i.defun);
        plan.ok = true;
        plan.entry = name;
        plan.feedback.push_back(
            "function became iterative; no server pool needed");
        plans_[name] = plan;
        return plan;
      }
      plan.feedback.push_back("rec2iter: " + r2i.failure);
    }
    if (opts.enable_dps) {
      auto dps = transform::apply_dps(ctx_, info);
      if (dps.ok) {
        plan.used_dps = true;
        dps_safe = dps.dps_safe;
        for (const auto& n : dps.notes) plan.feedback.push_back(n);
        plan.forms.push_back(dps.dps_defun);
        plan.forms.push_back(dps.wrapper_defun);
        current = dps.dps_defun;
        info = analysis::extract_function(ctx_, decls_, current, &summaries_);
        dps_dest = info.params.empty() ? nullptr : info.params[0];
      } else {
        plan.feedback.push_back("dps: " + dps.failure);
      }
    }
    if (!plan.used_dps) {
      plan.failure =
          "recursive calls use their results and neither enabling "
          "transformation (§5) applies";
      return plan;
    }
  }

  analysis::ConflictOptions copts;
  copts.max_distance = opts.max_conflict_distance;
  analysis::ConflictReport conflicts =
      analysis::detect_conflicts(ctx_, decls_, info, copts);

  if (conflicts.cross_param_aliasing && !dps_safe) {
    plan.failure =
        "worst-case aliasing between parameters prevents any "
        "concurrency; declare (noalias " +
        name->name + ") if arguments never share structure (paper §1.3)";
    for (const auto& n : conflicts.notes) plan.feedback.push_back(n);
    return plan;
  }

  // ---- §3.2.3 reorder ---------------------------------------------------
  bool any_reorderable = false;
  for (const auto& c : conflicts.conflicts)
    any_reorderable |= c.reorderable_op != nullptr;
  if (any_reorderable && opts.strategy != Strategy::LockOnly &&
      opts.strategy != Strategy::None) {
    auto ro = transform::apply_reorder(ctx_, decls_, info);
    if (ro.rewritten > 0) {
      plan.reordered = ro.rewritten;
      for (const auto& n : ro.notes) plan.feedback.push_back(n);
      current = ro.defun;
      info = analysis::extract_function(ctx_, decls_, current, &summaries_);
      conflicts = analysis::detect_conflicts(ctx_, decls_, info, copts);
    }
  }

  // ---- DPS provenance: drop conflicts on the destination ----------------
  if (dps_safe && dps_dest != nullptr) {
    std::vector<analysis::Conflict> kept;
    for (auto& c : conflicts.conflicts) {
      const bool dest_conflict =
          !c.is_variable_conflict() &&
          (c.earlier.root == dps_dest || c.later.root == dps_dest);
      if (!dest_conflict) kept.push_back(c);
    }
    if (kept.size() != conflicts.conflicts.size()) {
      plan.feedback.push_back(
          "dropped " +
          std::to_string(conflicts.conflicts.size() - kept.size()) +
          " destination-store conflicts: Curare generated these stores "
          "and knows they hit unique cells (§5)");
      conflicts.conflicts = std::move(kept);
    }
  }

  // ---- §3.2.2 delay ---------------------------------------------------------
  if (!conflicts.conflicts.empty() &&
      (opts.strategy == Strategy::Auto ||
       opts.strategy == Strategy::DelayThenLock)) {
    auto dl = transform::apply_delay(ctx_, decls_, info, conflicts);
    if (dl.moved > 0) {
      plan.delayed = dl.moved;
      for (const auto& n : dl.notes) plan.feedback.push_back(n);
      current = dl.defun;
      info = analysis::extract_function(ctx_, decls_, current, &summaries_);
      conflicts = analysis::detect_conflicts(ctx_, decls_, info, copts);
    }
  }

  // ---- §3.2.1 locks: plan now, insert into the server body below --------
  transform::LockPlan lock_plan;
  if (!conflicts.conflicts.empty()) {
    if (opts.strategy == Strategy::ReorderOnly ||
        opts.strategy == Strategy::None) {
      plan.failure = "conflicts remain and the chosen strategy forbids "
                     "locking";
      for (const auto& c : conflicts.conflicts)
        plan.feedback.push_back("unresolved: " + c.describe());
      return plan;
    }
    lock_plan = transform::plan_locks(ctx_, info, conflicts);
    for (const auto& n : lock_plan.notes) plan.feedback.push_back(n);
    plan.locks_inserted = static_cast<int>(lock_plan.locks.size());
    plan.concurrency_cap = conflicts.min_distance();
    for (const auto& c : conflicts.conflicts)
      plan.feedback.push_back("locked: " + c.describe());
  }

  // ---- §3.1/§4 CRI codegen -------------------------------------------------------
  transform::CriOptions cri_opts;
  cri_opts.capture_result = opts.capture_result && !plan.used_dps;
  auto cri = transform::make_cri(ctx_, info, cri_opts);
  if (!cri.ok) {
    plan.failure = cri.failure;
    return plan;
  }
  for (const auto& n : cri.notes) plan.feedback.push_back(n);
  // Locks wrap the server body, whose return value the pool discards —
  // so appending unlocks never disturbs the captured result.
  Value server_defun =
      transform::apply_lock_plan(ctx_, cri.server_defun, lock_plan);
  plan.forms.push_back(server_defun);
  // The generic wrapper targets the analyzed function directly; the DPS
  // path emits its own destination-seeding wrapper below instead.
  if (!plan.used_dps) plan.forms.push_back(cri.wrapper_defun);

  if (plan.used_dps) {
    // The DPS wrapper still calls f$dps recursively-sequentially; emit a
    // parallel entry that seeds the destination and runs the pool.
    //   (defun f$parallel (%servers params…)
    //     (let ((%d (cons nil nil)))
    //       (%cri-run f$dps$cri NSITES %servers %d params…)
    //       (cdr %d)))
    analysis::FunctionInfo dps_info = info;
    Value d = transform::sym(ctx_, "%d");
    std::vector<Value> run{transform::sym(ctx_, "%cri-run"),
                           Value::object(cri.server_name),
                           Value::fixnum(static_cast<std::int64_t>(
                               cri.num_sites)),
                           transform::sym(ctx_, "%servers"), d};
    std::vector<Value> params{transform::sym(ctx_, "%servers")};
    for (std::size_t i = 1; i < dps_info.params.size(); ++i) {
      params.push_back(Value::object(dps_info.params[i]));
      run.push_back(Value::object(dps_info.params[i]));
    }
    Symbol* pname = ctx_.symbols.intern(name->name + "$parallel");
    Value body = transform::form(
        ctx_,
        {Value::object(ctx_.s_let),
         ctx_.make_list(ctx_.make_list(
             d, transform::form(ctx_, {transform::sym(ctx_, "cons"),
                                       Value::nil(), Value::nil()}))),
         transform::form(ctx_, run),
         transform::form(ctx_, {Value::object(ctx_.s_cdr), d})});
    Value pdefun = transform::form(
        ctx_, {Value::object(ctx_.s_defun), Value::object(pname),
               transform::form(ctx_, params), body});
    plan.forms.push_back(pdefun);
    plan.entry = pname;
  } else {
    plan.entry = cri.wrapper_name;
  }
  plan.server = cri.server_name;
  plan.num_sites = cri.num_sites;
  plan.final_headtail = analysis::partition_head_tail(ctx_, info);
  plan.ok = true;

  for (Value f : plan.forms) interp_.eval_top(f);
  plans_[name] = plan;
  return plan;
}

Value Curare::run_sequential(std::string_view fn_name,
                             std::span<const Value> args) {
  Value fn = interp_.global(fn_name);
  if (fn.is_nil())
    throw LispError("curare: undefined function " + std::string(fn_name));
  return interp_.apply(fn, args);
}

Value Curare::run_parallel(std::string_view fn_name,
                           std::span<const Value> args,
                           std::size_t servers) {
  Symbol* name = ctx_.symbols.intern(fn_name);
  auto it = plans_.find(name);
  if (it == plans_.end() || !it->second.ok)
    throw LispError("curare: " + std::string(fn_name) +
                    " has not been successfully transformed");
  const TransformPlan& plan = it->second;

  if (plan.used_rec2iter) {
    // Iterative replacement: just call it.
    return run_sequential(fn_name, args);
  }

  if (servers == 0) {
    const auto& ht = plan.final_headtail;
    // Depth is unknown statically; assume a mid-size recursion for the
    // §4.1 estimate. Real callers pass an explicit S.
    servers = runtime::choose_servers(
        1024.0, static_cast<double>(ht.head_size ? ht.head_size : 1),
        static_cast<double>(ht.tail_size), plan.concurrency_cap,
        std::max(1u, std::thread::hardware_concurrency()));
  }

  Value entry = interp_.global(plan.entry->name);
  std::vector<Value> full_args{
      Value::fixnum(static_cast<std::int64_t>(servers))};
  full_args.insert(full_args.end(), args.begin(), args.end());
  return interp_.apply(entry, full_args);
}

}  // namespace curare
