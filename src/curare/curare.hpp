// Curare: the top-level program restructurer.
//
// This is the public API a user of the library sees — the C++ analogue
// of feeding a Lisp program to the paper's transformer:
//
//   sexpr::Ctx ctx;
//   curare::Curare cur(ctx);
//   cur.load_program("(defun f (l) …) (curare-declare …)");
//   auto report = cur.analyze("f");          // conflicts, head/tail, τ
//   auto plan   = cur.transform("f");        // restructured defuns
//   Value out   = cur.run_parallel("f", args, servers);  // CRI pool
//   Value ref   = cur.run_sequential("f", args);
//
// The transformation pipeline follows the paper's §3.2 order of
// decreasing cost and generality in reverse — cheapest device first:
//
//   1. §5  enabling transforms when results are used:
//          recursion→iteration, then destination-passing style;
//   2. §3.2.3 reordering of declared commutative/associative/atomic
//          updates into synchronized primitives;
//   3. §3.2.2 delays — hoisting conflicting writes into the head;
//   4. §3.2.1 locks for everything that remains;
//   5. §3.1/§4 CRI codegen: calls → enqueues, plus the pool wrapper.
//
// Every refusal carries feedback (§6): what blocked the transformation
// and which declaration would unblock it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/conflict.hpp"
#include "gc/gc.hpp"
#include "analysis/extract.hpp"
#include "analysis/headtail.hpp"
#include "analysis/summary.hpp"
#include "decl/declarations.hpp"
#include "lisp/interp.hpp"
#include "runtime/runtime.hpp"
#include "sexpr/ctx.hpp"
#include "vm/vm.hpp"

namespace curare {

using sexpr::Symbol;
using sexpr::Value;

/// Result of analyzing one function (paper §2–3 artifacts).
struct AnalysisReport {
  analysis::FunctionInfo info;
  analysis::ConflictReport conflicts;
  analysis::HeadTail headtail;
  /// τ per parameter, printed the way the paper writes it.
  std::vector<std::pair<std::string, std::string>> transfers;
  std::string to_string() const;
};

/// Which evaluator executes Lisp under this driver. kVm (the default)
/// compiles closure bodies to bytecode lazily and falls back to the
/// tree-walker per form; kTree runs everything on the tree-walker and
/// serves as the differential oracle.
enum class EngineKind { kTree, kVm };

enum class Strategy { Auto, LockOnly, DelayThenLock, ReorderOnly, None };

struct TransformOptions {
  Strategy strategy = Strategy::Auto;
  bool enable_rec2iter = true;
  bool enable_dps = true;
  bool capture_result = true;
  int max_conflict_distance = 16;
};

struct TransformPlan {
  bool ok = false;
  std::string failure;                ///< §6 feedback when !ok
  std::vector<std::string> feedback;  ///< everything noteworthy
  std::vector<Value> forms;           ///< defuns to install, in order
  Symbol* entry = nullptr;            ///< f$parallel
  Symbol* server = nullptr;           ///< f$cri
  std::size_t num_sites = 0;
  int locks_inserted = 0;
  int delayed = 0;
  int reordered = 0;
  bool used_dps = false;
  bool used_rec2iter = false;
  std::optional<int> concurrency_cap;  ///< min conflict distance, if locked
  analysis::HeadTail final_headtail;   ///< of the server body source
  std::string to_string() const;
};

class Curare : public gc::RootSource {
 public:
  explicit Curare(sexpr::Ctx& ctx, std::size_t workers = 0);

  /// Serving-layer construction: a driver with its own interpreter and
  /// global environment (session isolation) sharing an existing
  /// process-wide Runtime — one lock manager, future pool, watchdog,
  /// and recorder across all sessions. The shared runtime's primitives
  /// are installed into this driver's interpreter; CRI runs started
  /// here execute against *this* interpreter's environment.
  Curare(sexpr::Ctx& ctx, runtime::Runtime& shared_runtime);

  ~Curare() override;

  /// Read a program: defuns are evaluated (defining the sequential
  /// versions), declarations are collected. Returns the value of the
  /// last top-level form (nil for an empty program). The returned
  /// Value is NOT rooted once the caller leaves its own MutatorScope /
  /// RootScope — serving-mode callers must root it before the next
  /// quiescent point.
  Value load_program(std::string_view src);

  /// Every top-level form load_program has accepted so far, in order.
  /// The image subsystem captures these alongside the environment so a
  /// cloned session can replay the analyzer bookkeeping.
  const std::vector<Value>& program_forms() const { return program_forms_; }

  /// Warm-start support: replay the analyzer-side bookkeeping of
  /// load_program (defun tracking, declarations, defstruct structure
  /// declarations, interprocedural summaries) over forms that were
  /// already *evaluated* in a template session — the image clone
  /// installs the resulting bindings directly, so nothing here is
  /// evaluated. defstruct forms are assumed re-registered with the
  /// interpreter before this is called (clone_into does that first).
  void adopt_program_forms(const std::vector<Value>& forms);

  /// Read and evaluate every form in `src` on the selected engine;
  /// returns the last value. Unlike load_program this does NOT feed
  /// the analyzer — it is the REPL/-e evaluation path.
  Value eval_program(std::string_view src);

  /// Select the evaluator. Switching to kTree uninstalls the VM apply
  /// hook so even closure application runs on the tree-walker (the
  /// differential oracle needs the whole path); switching back
  /// reinstalls it. Cached code objects survive either way.
  void set_engine(EngineKind kind);
  EngineKind engine() const { return engine_; }

  const decl::Declarations& declarations() const { return decls_; }
  decl::Declarations& declarations() { return decls_; }
  lisp::Interp& interp() { return interp_; }
  vm::Vm& vm() { return *vm_; }
  runtime::Runtime& runtime() { return *runtime_; }

  /// Analyze a loaded function (paper §2–3).
  AnalysisReport analyze(std::string_view fn_name);

  /// Restructure a loaded function; on success the transformed defuns
  /// are installed in the interpreter (the sequential version keeps its
  /// name — the parallel entry point is plan.entry).
  TransformPlan transform(std::string_view fn_name,
                          const TransformOptions& opts = {});

  /// Run the sequential (original) definition.
  Value run_sequential(std::string_view fn_name,
                       std::span<const Value> args);

  /// Run the transformed version under S servers (0 = scheduler choice
  /// using the §4.1 model with static size estimates). transform() must
  /// have succeeded for this function.
  Value run_parallel(std::string_view fn_name, std::span<const Value> args,
                     std::size_t servers = 0);

  /// The defun source of a loaded function.
  Value source_of(std::string_view fn_name) const;

  /// Interprocedural effect summaries of every loaded defun (recomputed
  /// on each load_program).
  const analysis::SummaryMap& summaries() const { return summaries_; }

  /// Collector callback (world stopped): every loaded program form,
  /// every (possibly rewritten) defun source, and every transform
  /// plan's generated forms are live. The containers are mutated only
  /// under a MutatorScope (load_program/transform), so the collector
  /// never sees them mid-update.
  void gc_roots(std::vector<Value>& out) override;

 private:
  analysis::FunctionInfo extract_named(std::string_view fn_name);

  /// Engine-dispatched top-level eval (load_program / eval_program).
  Value eval_top(Value form);

  sexpr::Ctx& ctx_;
  lisp::Interp interp_;
  /// The bytecode engine over interp_. Always constructed (compilation
  /// is lazy, so an unused Vm costs nothing); engine_ decides whether
  /// its apply hook is installed and which eval path top-level forms
  /// take.
  std::unique_ptr<vm::Vm> vm_;
  EngineKind engine_ = EngineKind::kVm;
  /// Owned in the classic single-process shape; null when borrowing a
  /// process-wide runtime (serving layer).
  std::unique_ptr<runtime::Runtime> owned_runtime_;
  runtime::Runtime* runtime_;
  decl::Declarations decls_;
  std::vector<Value> program_forms_;
  std::unordered_map<Symbol*, Value> defuns_;
  std::unordered_map<Symbol*, TransformPlan> plans_;
  analysis::SummaryMap summaries_;
};

}  // namespace curare
