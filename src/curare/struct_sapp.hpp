// Canonicalization-aware SAPP check for defstruct graphs (paper §2.1).
//
// "A doubly-linked structure has an infinite number of paths to any
// instance in it. However, this set of paths can be reduced to a finite
// set of unique paths by combining adjacent successor-predecessor pairs
// in a path."
//
// The plain tree check (analysis::check_sapp) rejects doubly-linked
// lists outright. This checker walks the pointer fields of struct
// instances but does NOT follow the declared inverse of the edge it
// arrived by — the runtime realization of the canonicalization function
// C: a node reached by `succ` and then revisited by the matching `pred`
// is the same canonical path, not a second one. A node reachable along
// two genuinely different canonical paths still fails.
#pragma once

#include <string>

#include "decl/declarations.hpp"
#include "sexpr/value.hpp"

namespace curare {

struct StructSappResult {
  bool holds = true;
  std::size_t instances = 0;
  std::string violation;

  explicit operator bool() const { return holds; }
};

/// Check SAPP over a graph of defstruct Instances (and cons cells),
/// canonicalizing declared inverse-field pairs.
StructSappResult check_struct_sapp(sexpr::Value root,
                                   const decl::Declarations& decls);

}  // namespace curare
