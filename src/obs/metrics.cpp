#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace curare::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(std::uint64_t x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (seen + in_bucket >= target && in_bucket > 0) {
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double hi = i < bounds_.size()
                            ? static_cast<double>(bounds_[i])
                            : static_cast<double>(max());
      const double frac = (target - seen) / in_bucket;
      const double q_val = lo + (hi > lo ? (hi - lo) * frac : 0.0);
      // Interpolation can leave the observed range when a bucket is
      // wider than the data it holds; the true quantile never does.
      return std::clamp(q_val, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

std::vector<std::uint64_t> Histogram::default_ns_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1000; v < 20'000'000'000ull; v *= 4) b.push_back(v);
  return b;
}

std::vector<std::uint64_t> Histogram::default_depth_bounds() {
  std::vector<std::uint64_t> b;
  for (std::uint64_t v = 1; v <= 4096; v *= 2) b.push_back(v);
  return b;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name,
                              std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = Histogram::default_ns_bounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::string Metrics::to_string() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream ss;
  for (const auto& [name, c] : counters_) {
    ss << name << " = " << c->get() << "\n";
  }
  for (const auto& [name, gv] : gauges_) {
    ss << name << " = " << gv->get() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    ss << name << ": count=" << h->count() << " mean=" << h->mean()
       << " min=" << h->min() << " max=" << h->max()
       << " p50=" << h->quantile(0.5) << " p90=" << h->quantile(0.9)
       << " p99=" << h->quantile(0.99) << "\n";
  }
  return ss.str();
}

std::string Metrics::to_json() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream ss;
  ss << "{";
  bool first = true;
  auto key = [&](const std::string& name) {
    ss << (first ? "" : ",") << "\"" << name << "\":";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    key(name);
    ss << c->get();
  }
  for (const auto& [name, gv] : gauges_) {
    key(name);
    ss << gv->get();
  }
  for (const auto& [name, h] : histograms_) {
    key(name);
    ss << "{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"mean\":" << h->mean() << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << ",\"p50\":" << h->quantile(0.5)
       << ",\"p90\":" << h->quantile(0.9)
       << ",\"p99\":" << h->quantile(0.99) << "}";
  }
  ss << "}";
  return ss.str();
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; the registry uses
/// dotted names, so map everything else to '_' under a stable prefix.
std::string prom_name(const std::string& name) {
  std::string out = "curare_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Metrics::to_prometheus() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ostringstream ss;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    ss << "# TYPE " << n << " counter\n" << n << " " << c->get() << "\n";
  }
  for (const auto& [name, gv] : gauges_) {
    const std::string n = prom_name(name);
    ss << "# TYPE " << n << " gauge\n" << n << " " << gv->get() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    // Summary, not histogram: the fixed ×4 buckets are an internal
    // detail; the derived quantiles are what dashboards and the CI
    // scrape consume.
    ss << "# TYPE " << n << " summary\n";
    ss << n << "{quantile=\"0.5\"} " << h->quantile(0.5) << "\n";
    ss << n << "{quantile=\"0.9\"} " << h->quantile(0.9) << "\n";
    ss << n << "{quantile=\"0.99\"} " << h->quantile(0.99) << "\n";
    ss << n << "_sum " << h->sum() << "\n";
    ss << n << "_count " << h->count() << "\n";
  }
  return ss.str();
}

}  // namespace curare::obs
