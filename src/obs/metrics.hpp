// Metrics registry: named counters, gauges, and fixed-bucket
// histograms, all lock-free on the update path (relaxed atomics).
//
// Lookup by name takes the registry mutex, so hot paths resolve their
// instruments once (e.g. at set_recorder time) and keep the reference —
// references returned by the registry are stable for its lifetime.
//
// Well-known instrument names used by the runtime:
//   lock.acquisitions       counter   every LockManager::lock
//   lock.contended          counter   acquisitions that had to wait
//   lock.wait_ns            histogram blocked time per contended acquire
//   cri.invocations         counter   tasks executed by server pools
//   cri.enqueues            counter   %cri-enqueue calls
//   cri.queue_depth         histogram depth sampled at each enqueue
//   cri.head_ns / tail_ns   counter   summed measured head/tail time
//   cri.busy_ns / idle_ns   counter   summed server busy/blocked time
//   cri.queue.notify_sent   counter   pushes that woke a sleeping server
//   cri.queue.notify_suppressed counter pushes with no sleeper (cv skipped)
//   cri.queue.spill_pushes  counter   pushes that overflowed a site ring
//   cri.queue.sleeps        counter   times a server actually blocked
//   cri.queue.pop_calls     counter   scheduler transactions (≥1 task)
//   future.spawned          counter   futures created
//   future.touches          counter   touch() calls
//   future.touch_waits      counter   touches that blocked
//   future.wait_ns          histogram blocked time per waiting touch
//   future.helped           counter   queued tasks run while waiting
//   cri.gc.collections      counter   stop-the-world collections
//   cri.gc.pause_ns         histogram pause length per collection
//   cri.gc.reclaimed_objects counter  objects swept across collections
//   cri.gc.reclaimed_bytes  counter   bytes swept across collections
//   cri.gc.live_objects     gauge     live objects after the last GC
//   cri.gc.heap_bytes       gauge     block bytes held after the last GC
//   obs.trace.dropped       counter   trace events lost to ring wrap
//   serve.sessions          gauge     connected serving sessions
//   serve.requests          counter   requests handled by the daemon
//   serve.request_ns        histogram end-to-end request latency
//   serve.inflight          gauge     requests currently executing
//   serve.queue_depth       gauge     requests waiting for admission
//   serve.admitted          counter   requests past admission control
//   serve.rejected.overload counter   requests bounced queue-full
//   serve.rejected.deadline counter   requests expired while queued
//   serve.queue_wait_ns     histogram admission wait per admitted request
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace curare::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Histogram over fixed upper-bound buckets (a final +inf bucket is
/// implicit). Tracks count, sum, min, and max exactly; quantiles are
/// interpolated within the landing bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t x);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  /// q in [0,1]; linear interpolation inside the landing bucket.
  double quantile(double q) const;

  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i; the last bucket is unbounded.
  std::uint64_t bound(std::size_t i) const {
    return i < bounds_.size() ? bounds_[i] : UINT64_MAX;
  }

  /// Default bounds for nanosecond durations: 1µs…~17s, ×4 steps.
  static std::vector<std::uint64_t> default_ns_bounds();
  /// Default bounds for small cardinalities (queue depths): 1…4096, ×2.
  static std::vector<std::uint64_t> default_depth_bounds();

 private:
  std::vector<std::uint64_t> bounds_;  ///< sorted upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

class Metrics {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates with `bounds` on first use (default_ns_bounds if empty);
  /// later calls return the existing histogram regardless of bounds.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds = {});

  /// Snapshot of everything, sorted by name, human-readable.
  std::string to_string() const;
  /// One JSON object with a field per instrument.
  std::string to_json() const;
  /// Prometheus text exposition (one scrape-able document): counters
  /// and gauges as plain samples, histograms as summary-style
  /// p50/p90/p99 quantile samples plus _sum/_count. Instrument names
  /// are sanitized (dots → underscores) and prefixed "curare_".
  std::string to_prometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace curare::obs
