#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace curare::obs {

namespace {

/// Sentinel keys for unnamed frames/leaves: one distinct address per
/// case so they intern like any named function.
const std::string kLambdaName = "<lambda>";
const std::string kAtomName = "<atom>";

const char* kind_prefix(Profiler::FrameKind k) {
  switch (k) {
    case Profiler::FrameKind::kFn: return "fn:";
    case Profiler::FrameKind::kBuiltin: return "builtin:";
    case Profiler::FrameKind::kForm: return "form:";
  }
  return "?:";
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::set_period(unsigned period) {
  unsigned p = kMinPeriod;
  while (p * 2 <= period) p *= 2;  // round down to a power of two
  g_mask.store(p - 1, std::memory_order_relaxed);
}

Profiler::ThreadState* Profiler::local_state() {
  // The registry keeps states alive past thread exit, so reports after
  // a CRI run still see its servers' samples.
  thread_local std::shared_ptr<ThreadState> tls;
  if (!tls) {
    tls = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> g(mu_);
    states_.push_back(tls);
  }
  return tls.get();
}

std::uint32_t Profiler::intern(ThreadState& ts, FrameKind k,
                               const std::string* name) {
  if (name == nullptr || name->empty()) {
    name = k == FrameKind::kForm ? &kAtomName : &kLambdaName;
  }
  const auto [it, inserted] =
      ts.ids.try_emplace(name, static_cast<std::uint32_t>(ts.names.size()));
  if (inserted) ts.names.push_back(kind_prefix(k) + *name);
  return it->second;
}

void Profiler::sample(const std::string* leaf) {
  ThreadState* ts = local_state();
  std::lock_guard<std::mutex> g(ts->mu);
  if (ts->ring.empty()) ts->ring.resize(kRingCapacity);
  Sample& s = ts->ring[ts->head % ts->ring.size()];
  ++ts->head;
  // Deep stacks keep their deepest kMaxDepth frames: the truncated
  // base is the least specific part of the attribution. The ring holds
  // the deepest kCap ≥ kMaxDepth frames, so the modular reads below
  // always hit live entries.
  const FrameBuf& fb = tls_frames;
  const std::size_t n = fb.depth;
  const std::size_t keep = std::min(n, kMaxDepth);
  s.depth = static_cast<std::uint16_t>(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const Frame& f =
        fb.frames[(n - keep + i) & (FrameBuf::kCap - 1)];
    s.frames[i] = intern(*ts, f.kind, f.name);
  }
  s.leaf = intern(*ts, FrameKind::kForm, leaf);
}

std::uint64_t Profiler::samples() const {
  std::lock_guard<std::mutex> g(mu_);
  std::uint64_t n = 0;
  for (const auto& ts : states_) {
    std::lock_guard<std::mutex> tg(ts->mu);
    n += std::min<std::uint64_t>(ts->head, ts->ring.size());
  }
  return n;
}

std::uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> g(mu_);
  std::uint64_t n = 0;
  for (const auto& ts : states_) {
    std::lock_guard<std::mutex> tg(ts->mu);
    if (ts->head > ts->ring.size() && !ts->ring.empty()) {
      n += ts->head - ts->ring.size();
    }
  }
  return n;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& ts : states_) {
    std::lock_guard<std::mutex> tg(ts->mu);
    ts->head = 0;
    // Drop the interned names too: ids are keyed by string *address*,
    // and a stale entry would silently relabel a later function whose
    // name happens to land at a freed name's address. With head reset
    // no sample references them, so forgetting is free.
    ts->ids.clear();
    ts->names.clear();
  }
}

std::string Profiler::collapsed() const {
  std::unordered_map<std::string, std::uint64_t> folded;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& ts : states_) {
      std::lock_guard<std::mutex> tg(ts->mu);
      const std::uint64_t held =
          std::min<std::uint64_t>(ts->head, ts->ring.size());
      for (std::uint64_t i = 0; i < held; ++i) {
        const Sample& s = ts->ring[i];
        std::string key;
        for (std::uint16_t d = 0; d < s.depth; ++d) {
          key += ts->names[s.frames[d]];
          key += ';';
        }
        key += ts->names[s.leaf];
        ++folded[key];
      }
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> rows(folded.begin(),
                                                          folded.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second
                                : a.first < b.first;
  });
  std::ostringstream ss;
  for (const auto& [stack, count] : rows) {
    ss << stack << " " << count << "\n";
  }
  return ss.str();
}

std::string Profiler::hot_report(std::size_t top_n) const {
  std::unordered_map<std::string, std::uint64_t> self, incl;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& ts : states_) {
      std::lock_guard<std::mutex> tg(ts->mu);
      const std::uint64_t held =
          std::min<std::uint64_t>(ts->head, ts->ring.size());
      total += held;
      std::vector<std::uint32_t> seen;
      for (std::uint64_t i = 0; i < held; ++i) {
        const Sample& s = ts->ring[i];
        ++self[ts->names[s.leaf]];
        // Inclusive: count each frame once per sample, leaf included.
        seen.clear();
        for (std::uint16_t d = 0; d < s.depth; ++d) {
          if (std::find(seen.begin(), seen.end(), s.frames[d]) ==
              seen.end()) {
            seen.push_back(s.frames[d]);
            ++incl[ts->names[s.frames[d]]];
          }
        }
        if (std::find(seen.begin(), seen.end(), s.leaf) == seen.end()) {
          ++incl[ts->names[s.leaf]];
        }
      }
    }
  }

  std::ostringstream ss;
  ss << "== eval profile (" << total << " samples, " << dropped()
     << " dropped, 1-in-" << period() << " eval steps) ==\n";
  if (total == 0) {
    ss << "(no samples; arm with --profile / :profile and run code)\n";
    return ss.str();
  }
  auto table = [&](const char* title,
                   std::unordered_map<std::string, std::uint64_t>& m) {
    std::vector<std::pair<std::string, std::uint64_t>> rows(m.begin(),
                                                            m.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    ss << title << "\n";
    const std::size_t n = std::min(top_n, rows.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double pct = 100.0 * static_cast<double>(rows[i].second) /
                         static_cast<double>(total);
      char line[160];
      std::snprintf(line, sizeof line, "  %5.1f%% %8llu  %s\n", pct,
                    static_cast<unsigned long long>(rows[i].second),
                    rows[i].first.c_str());
      ss << line;
    }
  };
  table("-- self (sampled form) --", self);
  table("-- inclusive (on stack) --", incl);
  return ss.str();
}

}  // namespace curare::obs
