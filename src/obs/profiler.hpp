// Sampling profiler for the tree-walking evaluator (DESIGN.md §12).
//
// The interpreter already pays a thread-local tick per eval step to
// poll cancellation 1-in-64 (interp.cpp); the profiler piggybacks on
// that same tick. When armed, every `period`-th eval step captures the
// thread's current *profile stack* — a shadow stack of (kind, name)
// frames maintained by Interp::apply (RAII push/pop) and by the
// tail-call path (top-frame replacement, mirroring the interpreter's
// own frame reuse) — plus the sampled form's head symbol as the leaf.
//
// Samples land in fixed-capacity per-thread rings, so the steady-state
// cost is bounded and thread-local: a handful of pointer-keyed id
// lookups per sample, no strings copied after a function's first
// sample, no cross-thread contention. Reports aggregate across
// threads: a collapsed-stack dump (flamegraph folded format) and a
// hot-form table (self and inclusive sample counts) — the evidence
// base for the evaluator-rewrite roadmap item.
//
// Names are interned by the *address* of the function's name string at
// sample time. Closure objects are GC-managed, so an address can in
// principle be reused by a later allocation and misattribute a frame;
// for a sampling profile that rare aliasing is accepted in exchange
// for never touching string contents on the hot path.
//
// One process-wide instance (like the fault injector): the CLI flag
// (--profile), the REPL command (:profile), and the serve daemon all
// arm the same profiler.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace curare::obs {

class Profiler {
 public:
  enum class FrameKind : std::uint8_t { kFn, kBuiltin, kForm };

  /// Deepest frames kept per sample; deeper stacks drop their base
  /// frames (the leaf end is what names the cost center).
  static constexpr std::size_t kMaxDepth = 16;
  /// Samples held per thread before the ring wraps (drops counted).
  /// Sized for cache residency, not statistics: ~150 KiB per thread.
  /// E22 measured 8192-slot rings (~590 KiB × one ring per serve
  /// session) evicting the interpreter's working set — the serve
  /// sweep's 1-in-8 overhead fell from ~20% to ~3% on this change
  /// alone, and 2048 samples still rank hot forms stably.
  static constexpr std::size_t kRingCapacity = 2048;
  /// Default sampling period, matching the cancellation poll: one
  /// sample per 64 eval steps.
  static constexpr unsigned kDefaultPeriod = 64;
  /// Floor for set_period: sampling more than 1-in-8 would measure the
  /// profiler, not the program.
  static constexpr unsigned kMinPeriod = 8;

  static Profiler& instance();

  /// Hot-path gates, readable without the instance (the interpreter
  /// checks them every eval step).
  static bool armed() { return g_armed.load(std::memory_order_relaxed); }
  static bool due(unsigned tick) {
    return armed() &&
           (tick & g_mask.load(std::memory_order_relaxed)) == 0;
  }

  void set_enabled(bool on) {
    g_armed.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return armed(); }
  /// Sample every `period`-th eval step; rounded down to a power of
  /// two, floored at kMinPeriod.
  void set_period(unsigned period);
  unsigned period() const {
    return g_mask.load(std::memory_order_relaxed) + 1;
  }

  /// Shadow-stack maintenance (use ProfileFrameScope, not these).
  /// The stack is a trivially-destructible thread_local ring written
  /// on EVERY closure/builtin application while armed, so these must
  /// compile to a few plain stores: no TLS init guard (trivial type,
  /// constant-initialized), no vector growth, no registry lookup.
  /// Depth counts past kStackCap; the ring keeps the deepest frames,
  /// which is the end sample() wants anyway.
  void push_frame(FrameKind k, const std::string* name) {
    FrameBuf& fb = tls_frames;
    fb.frames[fb.depth & (FrameBuf::kCap - 1)] = Frame{name, k};
    ++fb.depth;
  }
  void pop_frame() {
    FrameBuf& fb = tls_frames;
    if (fb.depth > 0) --fb.depth;
  }
  /// The interpreter reused the current frame for a tail call: rename
  /// the top of the shadow stack instead of growing it.
  void note_tail_call(const std::string* name) {
    FrameBuf& fb = tls_frames;
    if (fb.depth > 0) {
      fb.frames[(fb.depth - 1) & (FrameBuf::kCap - 1)] =
          Frame{name, FrameKind::kFn};
    }
  }

  /// Record one sample: the calling thread's shadow stack plus `leaf`
  /// (the form under evaluation; nullptr → "<atom>").
  void sample(const std::string* leaf);

  /// Samples currently held / lost to ring wrap, across all threads.
  std::uint64_t samples() const;
  std::uint64_t dropped() const;
  /// Forget all samples and interned names (rings stay allocated).
  /// Names must go with the samples: interning is keyed by string
  /// address, and a surviving entry could relabel a later function
  /// allocated at a freed name's address.
  void clear();

  /// Folded flamegraph lines: "frame;frame;leaf count\n", most
  /// frequent first.
  std::string collapsed() const;
  /// Human-readable top cost centers: self (leaf) and inclusive
  /// (anywhere on stack) sample shares.
  std::string hot_report(std::size_t top_n = 12) const;

 private:
  struct Frame {
    const std::string* name;
    FrameKind kind;
  };
  /// The calling thread's shadow stack: a fixed ring so push/pop are
  /// branch-plus-store. depth may exceed kCap (deep non-tail
  /// recursion); the ring then holds the deepest kCap frames and
  /// sample() — which keeps at most kMaxDepth ≤ kCap of the deepest —
  /// still reads real frames. Trivially destructible and
  /// zero-initialized, so access needs no TLS guard.
  struct FrameBuf {
    static constexpr std::uint32_t kCap = 64;  ///< power of two
    Frame frames[kCap];
    std::uint32_t depth;
  };
  static_assert(kMaxDepth <= FrameBuf::kCap);
  static inline thread_local FrameBuf tls_frames{};

  struct Sample {
    std::array<std::uint32_t, kMaxDepth> frames;  ///< outermost first
    std::uint32_t leaf = 0;
    std::uint16_t depth = 0;
  };
  struct ThreadState {
    /// Written at sample time and read by reporters on other
    /// threads — guarded by mu.
    mutable std::mutex mu;
    std::unordered_map<const void*, std::uint32_t> ids;
    std::vector<std::string> names;  ///< id → "fn:name" / "builtin:…"
    std::vector<Sample> ring;        ///< sized lazily on first sample
    std::uint64_t head = 0;          ///< samples ever taken here
  };

  Profiler() = default;
  ThreadState* local_state();
  static std::uint32_t intern(ThreadState& ts, FrameKind k,
                              const std::string* name);

  static inline std::atomic<bool> g_armed{false};
  static inline std::atomic<unsigned> g_mask{kDefaultPeriod - 1};

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadState>> states_;
};

/// RAII frame for Interp::apply: pushes only while the profiler is
/// armed, and pops iff it pushed (arming mid-call stays balanced).
class ProfileFrameScope {
 public:
  ProfileFrameScope(Profiler::FrameKind k, const std::string* name) {
    if (Profiler::armed()) {
      Profiler::instance().push_frame(k, name);
      pushed_ = true;
    }
  }
  ~ProfileFrameScope() {
    if (pushed_) Profiler::instance().pop_frame();
  }
  ProfileFrameScope(const ProfileFrameScope&) = delete;
  ProfileFrameScope& operator=(const ProfileFrameScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace curare::obs
