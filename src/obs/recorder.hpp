// The bundle the runtime threads through its components: one tracer,
// one metrics registry, one speedup report. Components accept a
// `Recorder*` and treat nullptr as "observability off" (the null-object
// case — no clock reads, no atomics touched). The tracer inside a live
// recorder is additionally toggleable at runtime; metrics are always on
// when a recorder is present (their cost is a handful of relaxed
// atomic adds on paths that already take a mutex or run a task body).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace curare::obs {

struct Recorder {
  Tracer tracer;
  Metrics metrics;
  SpeedupReport speedup;
};

/// The --stats / :stats payload: the measured-vs-predicted T(S) table
/// followed by a dump of every metric.
std::string full_report(const Recorder& rec);

}  // namespace curare::obs
