#include "obs/report.hpp"

#include <cstdio>
#include <sstream>

#include "runtime/scheduler.hpp"  // header-only §4.1 model

namespace curare::obs {

void SpeedupReport::add(MeasuredRun run) {
  std::lock_guard<std::mutex> g(mu_);
  runs_.push_back(std::move(run));
}

void SpeedupReport::clear() {
  std::lock_guard<std::mutex> g(mu_);
  runs_.clear();
}

std::size_t SpeedupReport::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return runs_.size();
}

std::vector<MeasuredRun> SpeedupReport::runs() const {
  std::lock_guard<std::mutex> g(mu_);
  return runs_;
}

std::vector<SpeedupRow> SpeedupReport::rows() const {
  std::vector<SpeedupRow> out;
  for (const MeasuredRun& r : runs()) {
    SpeedupRow row;
    row.run = r;
    const double d = static_cast<double>(r.invocations);
    if (d > 0) {
      row.mean_h_ns = static_cast<double>(r.head_ns) / d;
      row.mean_t_ns = static_cast<double>(r.tail_ns) / d;
    }
    // A base-case-only run has h = whole body; keep the model total
    // positive so the error column stays defined.
    if (row.mean_h_ns <= 0) row.mean_h_ns = 1;
    row.predicted_ns = runtime::predicted_time(
        static_cast<double>(r.servers), d > 0 ? d : 1, row.mean_h_ns,
        row.mean_t_ns);
    if (row.predicted_ns > 0) {
      row.error_pct = (static_cast<double>(r.wall_ns) - row.predicted_ns) /
                      row.predicted_ns * 100.0;
    }
    const double occupied =
        static_cast<double>(r.busy_ns) + static_cast<double>(r.idle_ns);
    row.utilization =
        occupied > 0 ? static_cast<double>(r.busy_ns) / occupied : 0.0;
    row.s_star = runtime::optimal_servers_continuous(d > 0 ? d : 1,
                                                     row.mean_h_ns,
                                                     row.mean_t_ns);
    out.push_back(row);
  }
  return out;
}

std::string SpeedupReport::table() const {
  const std::vector<SpeedupRow> rws = rows();
  std::ostringstream ss;
  if (rws.empty()) {
    ss << "speedup report: no CRI runs recorded\n";
    return ss.str();
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "%-16s %4s %8s %10s %10s %10s %8s %6s %7s\n", "run", "S",
                "d", "T_meas ms", "T_pred ms", "err%", "util%", "S*",
                "h/(h+t)");
  ss << line;
  for (const SpeedupRow& r : rws) {
    const double ht = r.mean_h_ns + r.mean_t_ns;
    std::snprintf(
        line, sizeof line,
        "%-16s %4zu %8llu %10.3f %10.3f %+9.1f %7.1f %6.1f %7.3f\n",
        r.run.label.empty() ? "(cri)" : r.run.label.c_str(),
        r.run.servers,
        static_cast<unsigned long long>(r.run.invocations),
        static_cast<double>(r.run.wall_ns) / 1e6, r.predicted_ns / 1e6,
        r.error_pct, r.utilization * 100.0, r.s_star,
        ht > 0 ? r.mean_h_ns / ht : 0.0);
    ss << line;
  }
  ss << "T_pred = (ceil(d/S)-1)(h+t) + (S*h+t) with measured mean h, t "
        "(paper 4.1);\nS* = sqrt(d(h+t)/h) unclamped.\n";
  return ss.str();
}

std::string SpeedupReport::json_lines() const {
  std::ostringstream ss;
  for (const SpeedupRow& r : rows()) {
    ss << "{\"label\":\"" << r.run.label << "\",\"servers\":"
       << r.run.servers << ",\"invocations\":" << r.run.invocations
       << ",\"wall_ns\":" << r.run.wall_ns << ",\"head_ns\":"
       << r.run.head_ns << ",\"tail_ns\":" << r.run.tail_ns
       << ",\"busy_ns\":" << r.run.busy_ns << ",\"idle_ns\":"
       << r.run.idle_ns << ",\"predicted_ns\":" << r.predicted_ns
       << ",\"error_pct\":" << r.error_pct << ",\"utilization\":"
       << r.utilization << ",\"s_star\":" << r.s_star << "}\n";
  }
  return ss.str();
}

}  // namespace curare::obs
