// Low-overhead event tracer for the concurrent runtime.
//
// Every thread that emits gets its own fixed-capacity ring buffer of
// 48-byte events, so a hot server loop never contends with other
// emitters (the only possible contention is with an exporter draining
// the rings, which happens after the run). When the ring wraps, the
// oldest events are overwritten and counted in dropped() — a trace is a
// window onto the tail of the execution, never a stall. A Counter can
// be attached (set_drop_counter) to surface wraps as the
// `obs.trace.dropped` metric, so a truncated export is diagnosable
// from the stats report alone.
//
// Every event is stamped with the emitting thread's current request id
// (obs/request.hpp, 0 outside any request), so one request's spans can
// be cut out of the shared rings after the fact — that is the serve
// layer's `trace` op.
//
// The tracer is runtime-toggleable: emit() returns immediately while
// disabled, so instrumented code can stay unconditionally wired
// (null-object pattern: a null Recorder* skips even that check).
//
// export: write_chrome_trace() produces the Chrome trace-event JSON
// format (the "traceEvents" array form), loadable in Perfetto or
// chrome://tracing. Span events use ph:"X" (complete events with
// microsecond ts/dur); point events use ph:"i" (instants).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace curare::obs {

enum class EventKind : std::uint8_t {
  kTaskRun,         // X  one CRI invocation    a0=server, a1=invocation#
  kTaskEnqueue,     // i  %cri-enqueue          a0=site,   a1=queue depth
  kServerIdle,      // X  server blocked in pop a0=server
  kLockWait,        // X  blocked acquiring     a0=key,    a1=exclusive
  kLockAcquire,     // i  lock granted          a0=key,    a1=exclusive
  kLockRelease,     // i  lock released         a0=key,    a1=exclusive
  kFutureSpawn,     // i  future created        a0=future#
  kFutureRun,       // X  future body executed  a0=future#
  kFutureTouchWait, // X  touch blocked         a1=tasks helped while waiting
  kEarlyFinish,     // i  %cri-finish delivered
  kGcPause,         // X  stop-the-world collection  a0=reclaimed objs, a1=bytes
};

/// Human name used in the exported trace.
const char* event_name(EventKind k);

struct TraceEvent {
  std::uint64_t ts_ns = 0;   ///< start, relative to the tracer's epoch
  std::uint64_t dur_ns = 0;  ///< 0 for instant events
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t rid = 0;     ///< request id active on the emitting thread
  EventKind kind = EventKind::kTaskRun;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity_per_thread = 1u << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer's construction (steady clock).
  std::uint64_t now_ns() const;

  /// Record an event; no-op while disabled. Timestamps are caller-
  /// provided so spans can be stamped with their measured start.
  void emit(EventKind k, std::uint64_t ts_ns, std::uint64_t dur_ns,
            std::uint64_t a0 = 0, std::uint64_t a1 = 0);

  /// Instant event stamped now.
  void instant(EventKind k, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (!enabled()) return;
    emit(k, now_ns(), 0, a0, a1);
  }

  /// Span from `start_ns` (a prior now_ns() reading) until now.
  void span(EventKind k, std::uint64_t start_ns, std::uint64_t a0 = 0,
            std::uint64_t a1 = 0) {
    if (!enabled()) return;
    const std::uint64_t end = now_ns();
    emit(k, start_ns, end > start_ns ? end - start_ns : 0, a0, a1);
  }

  /// Label the calling thread in the exported trace ("cri-server-3").
  void name_thread(const std::string& name);

  std::size_t capacity_per_thread() const { return capacity_; }
  /// Threads that have emitted (or named themselves) so far.
  std::size_t thread_count() const;
  /// Events currently held across all rings.
  std::size_t events_recorded() const;
  /// Events overwritten by ring wrap-around, across all threads.
  std::uint64_t dropped() const;
  /// Count every future wrap-overwrite into `c` as well (typically the
  /// `obs.trace.dropped` registry counter); nullptr detaches.
  void set_drop_counter(Counter* c) {
    drop_counter_.store(c, std::memory_order_release);
  }
  /// Forget all recorded events (rings stay registered).
  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}), ts/dur in µs.
  /// With `rid_filter` nonzero, only events stamped with that request
  /// id are exported — one request's lane out of the shared rings.
  void write_chrome_trace(std::ostream& os,
                          std::uint64_t rid_filter = 0) const;
  std::string chrome_trace_json(std::uint64_t rid_filter = 0) const;

 private:
  struct ThreadBuf {
    mutable std::mutex mu;  ///< uncontended except against an exporter
    std::vector<TraceEvent> ring;  ///< sized lazily on first emit
    std::uint64_t head = 0;  ///< total events ever emitted on the thread
    std::uint32_t tid = 0;
    std::string name;
  };

  ThreadBuf* local_buf();

  const std::size_t capacity_;
  const std::uint64_t id_;  ///< globally unique; guards stale TLS slots
  std::atomic<bool> enabled_{false};
  std::atomic<Counter*> drop_counter_{nullptr};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
};

}  // namespace curare::obs
