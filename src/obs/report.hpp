// Measured-vs-predicted report for the §4.1 server-allocation model.
//
// Every CRI run contributes one MeasuredRun: its server count S, the
// recursion depth d (= invocations), wall time, and the measured head
// and tail time the tracer's instrumentation attributed inside the
// server loop. The report replays the paper's T(S) =
// (⌈d/S⌉−1)(h+t) + (S·h+t) with the *measured* mean h and t and prints
// measured wall time against it — the error column is the gap between
// the abstract machine of §4.1 and this implementation (queue cost,
// scheduling jitter, interpreter variance).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace curare::obs {

struct MeasuredRun {
  std::string label;            ///< e.g. the server function's name
  std::size_t servers = 1;      ///< S
  std::uint64_t invocations = 0;  ///< recursion depth d
  std::uint64_t wall_ns = 0;    ///< measured T(S)
  std::uint64_t head_ns = 0;    ///< Σ measured head time (h·d)
  std::uint64_t tail_ns = 0;    ///< Σ measured tail time (t·d)
  std::uint64_t busy_ns = 0;    ///< Σ over servers of in-body time
  std::uint64_t idle_ns = 0;    ///< Σ over servers of blocked-in-pop time
};

/// One computed table row.
struct SpeedupRow {
  MeasuredRun run;
  double mean_h_ns = 0;     ///< head_ns / d
  double mean_t_ns = 0;     ///< tail_ns / d
  double predicted_ns = 0;  ///< T(S) with measured h, t, d
  double error_pct = 0;     ///< (wall − predicted)/predicted · 100
  double utilization = 0;   ///< busy / (busy + idle)
  double s_star = 0;        ///< √(d(h+t)/h), unclamped optimum
};

class SpeedupReport {
 public:
  void add(MeasuredRun run);
  void clear();
  std::size_t size() const;
  std::vector<MeasuredRun> runs() const;

  /// Rows in insertion order, model columns filled in.
  std::vector<SpeedupRow> rows() const;

  /// The S vs T_measured vs T_predicted vs error% table.
  std::string table() const;

  /// One JSON object per run, newline-separated (for BENCH_*.json).
  std::string json_lines() const;

 private:
  mutable std::mutex mu_;
  std::vector<MeasuredRun> runs_;
};

}  // namespace curare::obs
