#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

#include "obs/request.hpp"

namespace curare::obs {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// One thread's cached (tracer-id → buffer) bindings. Tracer ids are
/// never reused, so a slot for a destroyed tracer can never be matched
/// again — stale entries are inert, not dangling in any reachable way.
struct TlsSlot {
  std::uint64_t tracer_id;
  void* buf;
};
thread_local std::vector<TlsSlot> g_tls_slots;

}  // namespace

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kTaskRun: return "cri-task";
    case EventKind::kTaskEnqueue: return "cri-enqueue";
    case EventKind::kServerIdle: return "server-idle";
    case EventKind::kLockWait: return "lock-wait";
    case EventKind::kLockAcquire: return "lock-acquire";
    case EventKind::kLockRelease: return "lock-release";
    case EventKind::kFutureSpawn: return "future-spawn";
    case EventKind::kFutureRun: return "future-run";
    case EventKind::kFutureTouchWait: return "future-touch-wait";
    case EventKind::kEarlyFinish: return "early-finish";
    case EventKind::kGcPause: return "gc-pause";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity_per_thread)
    : capacity_(std::max<std::size_t>(1, capacity_per_thread)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuf* Tracer::local_buf() {
  for (const TlsSlot& s : g_tls_slots) {
    if (s.tracer_id == id_) return static_cast<ThreadBuf*>(s.buf);
  }
  // The ring itself is allocated on the thread's first emit (see
  // emit()), so a thread that only names itself costs a registry entry,
  // not capacity_ events of storage.
  auto buf = std::make_shared<ThreadBuf>();
  {
    std::lock_guard<std::mutex> g(mu_);
    buf->tid = static_cast<std::uint32_t>(bufs_.size());
    bufs_.push_back(buf);
  }
  g_tls_slots.push_back(TlsSlot{id_, buf.get()});
  return buf.get();  // kept alive by bufs_ until the tracer dies
}

void Tracer::emit(EventKind k, std::uint64_t ts_ns, std::uint64_t dur_ns,
                  std::uint64_t a0, std::uint64_t a1) {
  if (!enabled()) return;
  // The emitting thread's request id rides on the event so one
  // request's lane can be filtered out of the shared rings later.
  const std::uint64_t rid = current_rid();
  ThreadBuf* b = local_buf();
  std::lock_guard<std::mutex> g(b->mu);
  if (b->ring.empty()) b->ring.resize(capacity_);
  if (b->head >= b->ring.size()) {
    // Overwriting the oldest event: silent truncation is a satellite
    // bug — make the wrap observable in the metrics registry too.
    if (Counter* c = drop_counter_.load(std::memory_order_acquire)) {
      c->add(1);
    }
  }
  b->ring[b->head % b->ring.size()] =
      TraceEvent{ts_ns, dur_ns, a0, a1, rid, k};
  ++b->head;
}

void Tracer::name_thread(const std::string& name) {
  // No-op while disabled: short-lived server threads name themselves on
  // every run, and registering each of them would grow the buffer list
  // (and the export) without any events to show for it.
  if (!enabled()) return;
  ThreadBuf* b = local_buf();
  std::lock_guard<std::mutex> g(b->mu);
  b->name = name;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return bufs_.size();
}

std::size_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> g(mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> bg(b->mu);
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(b->head, b->ring.size()));
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> g(mu_);
  std::uint64_t n = 0;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> bg(b->mu);
    if (b->head > b->ring.size()) n += b->head - b->ring.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> bg(b->mu);
    b->head = 0;
  }
}

void Tracer::write_chrome_trace(std::ostream& os,
                                std::uint64_t rid_filter) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> bg(b->mu);
    if (!b->name.empty()) {
      os << (first ? "" : ",")
         << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << b->tid << ",\"args\":{\"name\":\"" << b->name << "\"}}";
      first = false;
    }
    const std::uint64_t held =
        std::min<std::uint64_t>(b->head, b->ring.size());
    // Oldest first: when the ring wrapped, the oldest surviving event
    // sits right after the write cursor.
    const std::uint64_t start = b->head - held;
    for (std::uint64_t i = 0; i < held; ++i) {
      const TraceEvent& e = b->ring[(start + i) % b->ring.size()];
      if (rid_filter != 0 && e.rid != rid_filter) continue;
      os << (first ? "" : ",");
      first = false;
      os << "{\"name\":\"" << event_name(e.kind) << "\",\"ph\":\""
         << (e.dur_ns > 0 ? 'X' : 'i') << "\"";
      if (e.dur_ns == 0) os << ",\"s\":\"t\"";
      os << ",\"pid\":1,\"tid\":" << b->tid;
      os << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1000.0;
      if (e.dur_ns > 0)
        os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
      os << ",\"args\":{\"a0\":" << e.a0 << ",\"a1\":" << e.a1
         << ",\"rid\":" << e.rid << "}}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::chrome_trace_json(std::uint64_t rid_filter) const {
  std::ostringstream ss;
  write_chrome_trace(ss, rid_filter);
  return ss.str();
}

}  // namespace curare::obs
