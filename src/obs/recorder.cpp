#include "obs/recorder.hpp"

#include <sstream>

namespace curare::obs {

std::string full_report(const Recorder& rec) {
  std::ostringstream ss;
  ss << "== measured vs predicted T(S) (paper 4.1) ==\n"
     << rec.speedup.table() << "\n== metrics ==\n"
     << rec.metrics.to_string();
  if (rec.tracer.enabled() || rec.tracer.events_recorded() > 0) {
    ss << "trace: " << rec.tracer.events_recorded() << " events from "
       << rec.tracer.thread_count() << " thread(s), "
       << rec.tracer.dropped() << " dropped\n";
  }
  return ss.str();
}

}  // namespace curare::obs
