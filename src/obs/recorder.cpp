#include "obs/recorder.hpp"

#include <sstream>

#include "obs/profiler.hpp"

namespace curare::obs {

std::string full_report(const Recorder& rec) {
  std::ostringstream ss;
  ss << "== measured vs predicted T(S) (paper 4.1) ==\n"
     << rec.speedup.table() << "\n== metrics ==\n"
     << rec.metrics.to_string();
  if (rec.tracer.enabled() || rec.tracer.events_recorded() > 0) {
    ss << "trace: " << rec.tracer.events_recorded() << " events from "
       << rec.tracer.thread_count() << " thread(s), "
       << rec.tracer.dropped()
       << " dropped (counter obs.trace.dropped)\n";
  }
  const Profiler& prof = Profiler::instance();
  if (prof.enabled() || prof.samples() > 0) {
    ss << prof.hot_report();
  }
  return ss.str();
}

}  // namespace curare::obs
