// Request-scoped observability context (DESIGN.md §12).
//
// A serving request is executed by more threads than the one that read
// it off the socket: CRI server threads, future-pool workers, and the
// GC's collecting thread all do work on its behalf. To answer "where
// did *this* request's time go", the daemon mints one RequestContext
// per request and every participating thread installs it via
// RequestScope — the same thread-local discipline as CancelScope
// (runtime/resilience.hpp), and deliberately a shared_ptr: a future
// spawned by a request can outlive the request's socket frame (the
// session drains the pool at destruction), so attribution sinks must
// never dangle.
//
// Two consumers read the context:
//   - Tracer::emit stamps every event with the current rid, so the
//     `trace` serve op can cut one request's lane out of the shared
//     per-thread rings;
//   - Breakdown accumulates nanoseconds per phase (admission wait,
//     parse, eval, restructure, lock wait, GC pause overlap, reply
//     write), summed with relaxed atomics because CRI servers charge
//     lock waits concurrently.
//
// Everything here is header-only and dependency-free so obs, runtime,
// serve, and lisp can all include it without a link cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace curare::obs {

/// Per-request phase accounting, all in nanoseconds. The top-level
/// phases (admission, parse, eval, restructure, reply) partition the
/// request's wall time; lock_wait and gc_pause overlap eval — they
/// attribute *why* eval took that long, they do not add to it.
struct Breakdown {
  std::atomic<std::uint64_t> admission_ns{0};
  std::atomic<std::uint64_t> parse_ns{0};
  std::atomic<std::uint64_t> eval_ns{0};
  std::atomic<std::uint64_t> restructure_ns{0};
  std::atomic<std::uint64_t> lock_wait_ns{0};
  std::atomic<std::uint64_t> gc_pause_ns{0};
  std::atomic<std::uint64_t> reply_ns{0};
};

struct RequestContext {
  std::uint64_t rid = 0;      ///< process-unique numeric trace id
  std::string request_id;     ///< client-visible id (echoed in replies)
  Breakdown bd;

  // Resource budgets (DESIGN.md §14). Limits are set once when the
  // context is minted (daemon flags, or CLI --mem-quota/--fuel) and
  // never change afterwards; the `used` counters are charged with
  // relaxed atomics from the allocator and the eval tick on every
  // thread working for the request, so the budget is shared by the
  // socket thread, CRI servers, and future workers alike. 0 = no
  // limit. runtime/resource.hpp owns the charge-and-throw logic.
  std::uint64_t mem_quota = 0;   ///< bytes of GC allocation allowed
  std::uint64_t fuel_limit = 0;  ///< eval steps / VM instructions
  std::atomic<std::uint64_t> mem_used{0};
  std::atomic<std::uint64_t> fuel_used{0};

  static std::uint64_t next_rid() {
    static std::atomic<std::uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) + 1;
  }
};

namespace detail {
inline thread_local std::shared_ptr<RequestContext> g_current_request;
}  // namespace detail

/// The calling thread's active request, if any (shared_ptr so spawned
/// work can capture it past the request's own lifetime).
inline const std::shared_ptr<RequestContext>& current_request() {
  return detail::g_current_request;
}

/// The active request's rid, or 0 when no request is in scope — the
/// value the tracer stamps on events.
inline std::uint64_t current_rid() {
  const RequestContext* rc = detail::g_current_request.get();
  return rc != nullptr ? rc->rid : 0;
}

/// Add `ns` to one Breakdown field of the current request; no-op when
/// no request is in scope (CLI runs, tests, daemon housekeeping).
inline void charge_request(std::atomic<std::uint64_t> Breakdown::*field,
                           std::uint64_t ns) {
  if (RequestContext* rc = detail::g_current_request.get()) {
    (rc->bd.*field).fetch_add(ns, std::memory_order_relaxed);
  }
}

/// RAII installer, nestable and null-tolerant like CancelScope.
class RequestScope {
 public:
  explicit RequestScope(std::shared_ptr<RequestContext> ctx)
      : prev_(std::move(detail::g_current_request)) {
    detail::g_current_request = std::move(ctx);
  }
  ~RequestScope() { detail::g_current_request = std::move(prev_); }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::shared_ptr<RequestContext> prev_;
};

}  // namespace curare::obs
