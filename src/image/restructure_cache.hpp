// Content-addressed restructure cache (ROADMAP item 3c).
//
// Millions of users mostly submit the same hot programs, and every
// restructure request re-runs the paper's full §4 conflict analysis
// plus the §3.2/§5 transformation pipeline. The expensive step is
// deriving the concurrent form from the sequential one — so derive it
// once per daemon lifetime and reuse.
//
// Key = hash of the normalized program state that the answer depends
// on: the printed target defun, every loaded defun (sorted by name, so
// load order is normalized away), every declaration-bearing form
// (curare-declare / defstruct, which feed the analyzer), the request
// mode (named vs. sweep — a sweep skips non-recursive functions before
// transform, a named request reports them), and kRestructurerVersion.
// Bumping the version constant invalidates every cached verdict, which
// is the whole invalidation story: entries are immutable, keys are
// content-addressed, nothing is ever patched in place.
//
// Value = the exact reply chunk the miss path produced (so a hit
// answers byte-identically), the analysis verdicts a sweep needs
// (is_recursive, ok), and the transformed defun forms, which a hit
// evaluates into the *requesting* session's environment — forms are
// plain data on the shared heap, rooted here, so any session can
// install them.
//
// Bounded sharded LRU: N shards, each a mutex + intrusive LRU list, so
// concurrent sessions rarely contend. The cache is a gc::RootSource:
// cached forms stay live until eviction.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gc/gc.hpp"
#include "obs/metrics.hpp"
#include "sexpr/value.hpp"

namespace curare {
class Curare;
}

namespace curare::image {

/// Stamped into every cache key; bump when the transformation pipeline
/// changes so stale verdicts can never be replayed.
inline constexpr std::uint32_t kRestructurerVersion = 1;

struct RestructureEntry {
  std::string text;           ///< exact reply chunk for this function
  bool ok = false;            ///< counts toward "transformed N of M"
  bool is_recursive = false;  ///< sweep mode skips non-recursive defuns
  std::vector<sexpr::Value> forms;  ///< defuns a hit installs
};

class RestructureCache : public gc::RootSource {
 public:
  /// `capacity` is the total entry bound across shards (0 = 1).
  RestructureCache(gc::GcHeap& heap, std::size_t capacity);
  ~RestructureCache() override;
  RestructureCache(const RestructureCache&) = delete;
  RestructureCache& operator=(const RestructureCache&) = delete;

  /// Wire the curare_restructure_cache_{hit,miss,evict} counters.
  void attach_metrics(obs::Metrics& m);

  /// Copies the entry out under the shard lock; counts a hit or miss.
  /// Call inside a gc::MutatorScope — the copied forms are only
  /// guaranteed alive against a concurrent eviction + collection while
  /// the caller is in an unsafe region.
  bool lookup(const std::string& key, RestructureEntry* out);

  /// Insert (or refresh) an entry; evicts LRU tail past capacity.
  void insert(const std::string& key, RestructureEntry entry);

  std::size_t size() const;
  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 before any lookup.
  double hit_ratio() const;

  /// Collector callback (world stopped): every cached form is live.
  void gc_roots(std::vector<sexpr::Value>& out) override;

  /// Hash state of the program-state half of a key (every loaded
  /// defun sorted by name, the declaration-bearing forms, and the
  /// restructurer version), already folded in. A sweep over N
  /// functions builds this once and mints N per-target keys from it —
  /// reprinting and rehashing kilobytes of program text per name
  /// would otherwise dominate the very hit path the cache speeds up.
  struct KeySeed {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
  };

  /// Fold the driver's loaded program state into a seed. Call inside
  /// a MutatorScope (prints live forms).
  static KeySeed seed_state(Curare& driver);

  /// Key for one target from a precomputed seed. `named` is true when
  /// the request asked for this function explicitly (a sweep answers
  /// non-recursive functions differently, so the mode is key input).
  static std::string make_key(const KeySeed& seed,
                              const std::string& target, bool named);

  /// Convenience: seed_state + make_key in one step.
  static std::string make_key(Curare& driver, const std::string& target,
                              bool named);

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    /// front = most recently used.
    std::list<std::pair<std::string, RestructureEntry>> lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, RestructureEntry>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key);

  gc::GcHeap& heap_;
  const std::size_t per_shard_cap_;
  Shard shards_[kShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<obs::Counter*> hit_c_{nullptr};
  std::atomic<obs::Counter*> miss_c_{nullptr};
  std::atomic<obs::Counter*> evict_c_{nullptr};
};

}  // namespace curare::image
