// Warm-start session images (ROADMAP item 3b, after lispBM's lbm_image
// idea): flatten a template session's reachable graph — the global Env,
// every closure with its captured frames, struct instances, tables,
// strings, and the loaded program forms — into a versioned, checksummed,
// relocatable blob, then materialize new sessions from the blob with a
// bulk bump-allocation + pointer-fixup pass instead of re-evaluating the
// prelude.
//
// Relocation scheme. The blob never stores a pointer: heap objects
// become node indices, symbols and builtins become name references, and
// fixnums/nil ride immediately. Cloning therefore works into any heap:
// nodes are bump-allocated with placeholder contents (one
// GcHeap::reserve_blocks call pre-grows the free-block list so refills
// never hit the heap-growth path), Env frames are rebuilt parent-first
// with the captured *global* frame mapping onto the target session's
// existing global env, closures are constructed once body and frame
// exist (their compiled-code cache restarts at kCodeUnknown — compile
// state, including a refusal, is never carried across sessions), and a
// final pass patches every cons/vector/table/struct/env slot. Builtins
// are resolved by name against the target session, so native function
// pointers never enter the blob; Kind::Native objects (futures, locks,
// queues) are not serializable and fail capture with a clear error.
//
// Blob layout (all integers little-endian):
//   header  : magic "CURIMG01" | format u32 | flags u32
//             | payload size u64 | FNV-1a-64 checksum u64
//   payload : string table | struct-type table | node table
//             | global-env root | program-form roots
//
// load/from_bytes reject magic mismatch, version skew, truncation, and
// checksum corruption with distinct ImageError messages — a daemon
// restarted against a stale or damaged image fails loudly at startup,
// never serves from half a heap.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sexpr/value.hpp"

namespace curare {
class Curare;
}

namespace curare::image {

/// Image-specific failure (corrupt blob, version skew, unserializable
/// object, unresolvable reference). A LispError so the serving layer's
/// catch ladder turns it into a structured error response.
class ImageError : public sexpr::LispError {
 public:
  using sexpr::LispError::LispError;
};

inline constexpr char kImageMagic[8] = {'C', 'U', 'R', 'I',
                                        'M', 'G', '0', '1'};
/// Bump on any change to the node/value encodings below; a blob from a
/// different format version is rejected, never misread.
inline constexpr std::uint32_t kImageFormatVersion = 1;

/// What one clone did, for the session-setup metric and :stats.
struct CloneStats {
  std::size_t nodes = 0;        ///< heap objects materialized
  std::size_t env_frames = 0;   ///< local frames rebuilt
  std::size_t bindings = 0;     ///< global bindings merged
  std::size_t blocks_reserved = 0;  ///< fresh 64 KiB blocks pre-built
  std::uint64_t ns = 0;         ///< wall time of the whole clone
};

class SessionImage {
 public:
  /// Flatten `templ`'s session state (global env + program forms +
  /// registered struct types) into a blob. The template session must be
  /// idle; throws ImageError if the reachable graph holds an object
  /// that cannot relocate (Kind::Native).
  static SessionImage capture(Curare& templ);

  /// Validate and decode a blob; throws ImageError on any damage.
  static SessionImage from_bytes(std::vector<std::uint8_t> bytes);

  /// Read + from_bytes; throws ImageError (also for I/O failures).
  static SessionImage load_file(const std::string& path);

  /// Write the blob; throws ImageError on I/O failure.
  void save_file(const std::string& path) const;

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t node_count() const;

  /// Materialize this image into `target`, a freshly constructed
  /// serving-mode Curare (builtins + runtime primitives installed,
  /// nothing loaded). Idempotence is not supported: clone into a fresh
  /// session only. Thread-safe: the decoded layout is immutable, so any
  /// number of connections may clone concurrently.
  CloneStats clone_into(Curare& target) const;

  /// The parsed, pointer-free layout (definition in image.cpp). Public
  /// so the encode/decode helpers there can reach it; opaque to callers.
  struct Decoded;

 private:
  SessionImage() = default;

  std::vector<std::uint8_t> bytes_;
  std::shared_ptr<const Decoded> decoded_;
};

}  // namespace curare::image
