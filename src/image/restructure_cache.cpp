#include "image/restructure_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "curare/curare.hpp"
#include "sexpr/printer.hpp"

namespace curare::image {

using sexpr::Value;

namespace {

/// 128-bit content address: two FNV-1a-64 streams with different
/// offset bases. The composed key material can be kilobytes of printed
/// program text; storing the digest keeps per-entry overhead flat.
void fold(RestructureCache::KeySeed& s, const std::string& text) {
  for (unsigned char c : text) {
    s.h1 = (s.h1 ^ c) * 1099511628211ull;
    s.h2 = (s.h2 ^ c) * 1099511628211ull;
  }
}

RestructureCache::KeySeed fresh_seed() {
  return {14695981039346656037ull, 0x9AE16A3B2F90404Full};
}

std::string hex_key(const RestructureCache::KeySeed& s) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(s.h1),
                static_cast<unsigned long long>(s.h2));
  return std::string(buf, 32);
}

}  // namespace

RestructureCache::RestructureCache(gc::GcHeap& heap, std::size_t capacity)
    : heap_(heap),
      per_shard_cap_(std::max<std::size_t>(
          1, (std::max<std::size_t>(1, capacity) + kShards - 1) / kShards)) {
  heap_.add_root_source(this);
}

RestructureCache::~RestructureCache() { heap_.remove_root_source(this); }

void RestructureCache::attach_metrics(obs::Metrics& m) {
  hit_c_.store(&m.counter("restructure.cache.hit"),
               std::memory_order_release);
  miss_c_.store(&m.counter("restructure.cache.miss"),
                std::memory_order_release);
  evict_c_.store(&m.counter("restructure.cache.evict"),
                 std::memory_order_release);
}

RestructureCache::Shard& RestructureCache::shard_for(
    const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

bool RestructureCache::lookup(const std::string& key,
                              RestructureEntry* out) {
  Shard& s = shard_for(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      if (out != nullptr) *out = it->second->second;
      hit = true;
    }
  }
  // Count outside the shard lock: counters are atomic and gc_roots
  // takes every shard lock while the world is stopped.
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = hit_c_.load(std::memory_order_acquire)) c->add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = miss_c_.load(std::memory_order_acquire)) c->add();
  }
  return hit;
}

void RestructureCache::insert(const std::string& key,
                              RestructureEntry entry) {
  Shard& s = shard_for(key);
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> g(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(entry);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
    } else {
      s.lru.emplace_front(key, std::move(entry));
      s.index[key] = s.lru.begin();
      while (s.lru.size() > per_shard_cap_) {
        s.index.erase(s.lru.back().first);
        s.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted != 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (auto* c = evict_c_.load(std::memory_order_acquire))
      c->add(evicted);
  }
}

std::size_t RestructureCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    n += s.lru.size();
  }
  return n;
}

double RestructureCache::hit_ratio() const {
  const std::uint64_t h = hits();
  const std::uint64_t total = h + misses();
  return total == 0 ? 0.0 : static_cast<double>(h) /
                                static_cast<double>(total);
}

void RestructureCache::gc_roots(std::vector<Value>& out) {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> g(s.mu);
    for (const auto& [key, entry] : s.lru)
      out.insert(out.end(), entry.forms.begin(), entry.forms.end());
  }
}

RestructureCache::KeySeed RestructureCache::seed_state(Curare& driver) {
  KeySeed s = fresh_seed();
  fold(s, "curare-restructure-v" +
              std::to_string(kRestructurerVersion) + "\n");
  // Defuns sorted by name: load order never changes the answer, so it
  // must not change the key.
  std::vector<std::string> names;
  for (const auto& [sym, summary] : driver.summaries())
    names.push_back(sym->name);
  std::sort(names.begin(), names.end());
  for (const std::string& n : names)
    fold(s, n + "=" + sexpr::write_str(driver.source_of(n)) + "\n");
  // Declaration-bearing forms, in program order (the declaration *set*
  // is what matters; duplicates are harmless key noise).
  for (Value f : driver.program_forms()) {
    if (!f.is(sexpr::Kind::Cons) ||
        !sexpr::car(f).is(sexpr::Kind::Symbol))
      continue;
    const std::string& head = sexpr::as_symbol(sexpr::car(f))->name;
    if (head == "curare-declare" || head == "defstruct")
      fold(s, sexpr::write_str(f) + "\n");
  }
  return s;
}

std::string RestructureCache::make_key(const KeySeed& seed,
                                       const std::string& target,
                                       bool named) {
  KeySeed s = seed;
  fold(s, (named ? "mode:named\ntarget:" : "mode:sweep\ntarget:") +
              target + "\n");
  return hex_key(s);
}

std::string RestructureCache::make_key(Curare& driver,
                                       const std::string& target,
                                       bool named) {
  return make_key(seed_state(driver), target, named);
}

}  // namespace curare::image
