#include "image/image.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iterator>
#include <unordered_map>

#include "curare/curare.hpp"
#include "gc/gc.hpp"
#include "lisp/env.hpp"
#include "lisp/function.hpp"
#include "lisp/structs.hpp"
#include "sexpr/table.hpp"

namespace curare::image {

using lisp::Builtin;
using lisp::Closure;
using lisp::Env;
using lisp::EnvPtr;
using lisp::Instance;
using lisp::StructType;
using sexpr::Cons;
using sexpr::Float;
using sexpr::Kind;
using sexpr::Obj;
using sexpr::String;
using sexpr::Symbol;
using sexpr::Table;
using sexpr::Value;
using sexpr::Vector;

namespace {

constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

/// Immediate value encoding: one tag byte + 8 payload bytes. Heap
/// references become node indices; symbols and builtins become string
/// table references, which is what makes the blob relocatable.
enum class VTag : std::uint8_t {
  kNil = 0,
  kFixnum = 1,
  kNode = 2,
  kSym = 3,
  kBuiltin = 4,
};

struct EV {
  VTag tag = VTag::kNil;
  std::uint64_t payload = 0;
};

enum class NTag : std::uint8_t {
  kCons = 0,
  kString = 1,
  kFloat = 2,
  kVector = 3,
  kTable = 4,
  kStruct = 5,
  kClosure = 6,
  kEnv = 7,
};

struct NodeRec {
  NTag tag = NTag::kCons;
  EV a, d;                          ///< cons car/cdr; closure body in a
  std::uint32_t str = 0;            ///< string text / closure name
  std::uint64_t fbits = 0;          ///< float payload
  std::vector<EV> vals;             ///< vector items / table k,v pairs /
                                    ///< struct slots / env binding values
  std::vector<std::uint32_t> syms;  ///< closure params / env binding names
  std::uint32_t type_idx = 0;       ///< struct type table index
  std::uint32_t env_idx = kNoNode;  ///< closure captured frame
  bool has_rest = false;
  std::uint32_t rest_sym = 0;
  std::uint32_t parent = kNoNode;  ///< env parent frame
  bool env_global = false;
};

struct StructRec {
  std::uint32_t name = 0;
  std::vector<std::uint32_t> pointer_fields;
  std::vector<std::uint32_t> data_fields;
};

std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---- byte-stream helpers ------------------------------------------------

struct Writer {
  std::vector<std::uint8_t> out;
  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
  void ev(const EV& v) {
    u8(static_cast<std::uint8_t>(v.tag));
    u64(v.payload);
  }
};

struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t off = 0;

  void need(std::size_t k) const {
    if (off + k > n)
      throw ImageError("image truncated: payload ends mid-record");
  }
  std::uint8_t u8() {
    need(1);
    return p[off++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[off++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[off++]) << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }
  EV ev() {
    EV v;
    const std::uint8_t t = u8();
    if (t > static_cast<std::uint8_t>(VTag::kBuiltin))
      throw ImageError("image corrupt: unknown value tag " +
                       std::to_string(t));
    v.tag = static_cast<VTag>(t);
    v.payload = u64();
    return v;
  }
};

}  // namespace

// ---- the decoded (pointer-free) layout ----------------------------------

struct SessionImage::Decoded {
  std::vector<std::string> strings;
  std::vector<StructRec> structs;
  std::vector<NodeRec> nodes;
  std::uint32_t global_env = kNoNode;
  std::vector<EV> program_forms;
};

std::size_t SessionImage::node_count() const {
  return decoded_ ? decoded_->nodes.size() : 0;
}

// ---- capture ------------------------------------------------------------

namespace {

class Capturer {
 public:
  explicit Capturer(SessionImage::Decoded& d) : d_(d) {}

  std::uint32_t str_id(const std::string& s) {
    auto [it, fresh] =
        str_ids_.try_emplace(s, static_cast<std::uint32_t>(d_.strings.size()));
    if (fresh) d_.strings.push_back(s);
    return it->second;
  }

  std::uint32_t struct_id(const StructType* t) {
    auto [it, fresh] = struct_ids_.try_emplace(
        t, static_cast<std::uint32_t>(d_.structs.size()));
    if (fresh) {
      StructRec r;
      r.name = str_id(t->name->name);
      for (Symbol* f : t->pointer_fields)
        r.pointer_fields.push_back(str_id(f->name));
      for (Symbol* f : t->data_fields)
        r.data_fields.push_back(str_id(f->name));
      d_.structs.push_back(std::move(r));
    }
    return it->second;
  }

  std::uint32_t node_id(const Obj* o, NTag tag) {
    auto [it, fresh] = node_ids_.try_emplace(
        o, static_cast<std::uint32_t>(d_.nodes.size()));
    if (fresh) {
      d_.nodes.emplace_back().tag = tag;
      pending_objs_.push_back(o);
    }
    return it->second;
  }

  std::uint32_t env_id(const Env* e) {
    auto [it, fresh] = node_ids_.try_emplace(
        e, static_cast<std::uint32_t>(d_.nodes.size()));
    if (fresh) {
      d_.nodes.emplace_back().tag = NTag::kEnv;
      pending_envs_.push_back(e);
    }
    return it->second;
  }

  EV ev(Value v) {
    EV out;
    if (v.is_nil()) return out;
    if (v.is_fixnum()) {
      out.tag = VTag::kFixnum;
      out.payload = static_cast<std::uint64_t>(v.as_fixnum());
      return out;
    }
    const Obj* o = v.obj();
    switch (o->kind) {
      case Kind::Symbol:
        out.tag = VTag::kSym;
        out.payload = str_id(static_cast<const Symbol*>(o)->name);
        return out;
      case Kind::Builtin:
        out.tag = VTag::kBuiltin;
        out.payload = str_id(static_cast<const Builtin*>(o)->name);
        return out;
      case Kind::Native:
        throw ImageError(
            "image capture: session state holds a native runtime object "
            "(future/lock/queue), which cannot relocate; evaluate the "
            "prelude without leaving such objects reachable");
      default:
        out.tag = VTag::kNode;
        out.payload = node_id(o, tag_of(o->kind));
        return out;
    }
  }

  /// Drain the discovery worklists, filling node records. Iterative so
  /// deep list structure never recurses through C++ frames.
  void drain() {
    while (!pending_objs_.empty() || !pending_envs_.empty()) {
      if (!pending_objs_.empty()) {
        const Obj* o = pending_objs_.front();
        pending_objs_.pop_front();
        fill_obj(o);
      } else {
        const Env* e = pending_envs_.front();
        pending_envs_.pop_front();
        fill_env(e);
      }
    }
  }

 private:
  static NTag tag_of(Kind k) {
    switch (k) {
      case Kind::Cons: return NTag::kCons;
      case Kind::String: return NTag::kString;
      case Kind::Float: return NTag::kFloat;
      case Kind::Vector: return NTag::kVector;
      case Kind::Table: return NTag::kTable;
      case Kind::Closure: return NTag::kClosure;
      case Kind::Struct: return NTag::kStruct;
      default:
        throw ImageError("image capture: unexpected heap object kind");
    }
  }

  void fill_obj(const Obj* o) {
    // Children discovered here may append to d_.nodes, so re-resolve
    // the record after every ev() batch: grab the id first.
    const std::uint32_t id = node_ids_.at(o);
    switch (o->kind) {
      case Kind::Cons: {
        const auto* c = static_cast<const Cons*>(o);
        const EV a = ev(c->car());
        const EV d = ev(c->cdr());
        d_.nodes[id].a = a;
        d_.nodes[id].d = d;
        break;
      }
      case Kind::String:
        d_.nodes[id].str = str_id(static_cast<const String*>(o)->text);
        break;
      case Kind::Float:
        d_.nodes[id].fbits =
            std::bit_cast<std::uint64_t>(static_cast<const Float*>(o)->value);
        break;
      case Kind::Vector: {
        const auto* v = static_cast<const Vector*>(o);
        std::vector<EV> items;
        items.reserve(v->items.size());
        for (Value x : v->items) items.push_back(ev(x));
        d_.nodes[id].vals = std::move(items);
        break;
      }
      case Kind::Table: {
        const auto* t = static_cast<const Table*>(o);
        std::vector<EV> kv;
        for (const auto& [k, v] : t->entries()) {
          kv.push_back(ev(k));
          kv.push_back(ev(v));
        }
        d_.nodes[id].vals = std::move(kv);
        break;
      }
      case Kind::Struct: {
        const auto* inst = static_cast<const Instance*>(o);
        const std::uint32_t tix = struct_id(inst->type.get());
        std::vector<EV> slots;
        const int n = static_cast<int>(inst->slots.size());
        for (int i = 0; i < n; ++i) slots.push_back(ev(inst->get(i)));
        d_.nodes[id].type_idx = tix;
        d_.nodes[id].vals = std::move(slots);
        break;
      }
      case Kind::Closure: {
        const auto* c = static_cast<const Closure*>(o);
        const std::uint32_t name = str_id(c->name);
        std::vector<std::uint32_t> params;
        for (Symbol* p : c->params) params.push_back(str_id(p->name));
        const bool has_rest = c->rest != nullptr;
        const std::uint32_t rest =
            has_rest ? str_id(c->rest->name) : 0;
        const EV body = ev(c->body);
        const std::uint32_t env =
            c->env ? env_id(c->env.get()) : kNoNode;
        NodeRec& r = d_.nodes[id];
        r.str = name;
        r.syms = std::move(params);
        r.has_rest = has_rest;
        r.rest_sym = rest;
        r.a = body;
        r.env_idx = env;
        // The compiled-code cache (code_state/code) is deliberately not
        // captured: a clone restarts at kCodeUnknown, so even a
        // kCodeRefused verdict is re-derived in the new session.
        break;
      }
      default:
        throw ImageError("image capture: unexpected heap object kind");
    }
  }

  void fill_env(const Env* e) {
    const std::uint32_t id = node_ids_.at(e);
    const bool global = e->is_global();
    const std::uint32_t parent =
        e->parent() ? env_id(e->parent().get()) : kNoNode;
    // Sort bindings by name so identical sessions produce byte-identical
    // blobs (the frame map is unordered).
    std::vector<std::pair<Symbol*, Value>> binds;
    e->for_each_binding_named(
        [&](Symbol* s, Value v) { binds.emplace_back(s, v); });
    std::sort(binds.begin(), binds.end(), [](const auto& x, const auto& y) {
      return x.first->name < y.first->name;
    });
    std::vector<std::uint32_t> names;
    std::vector<EV> vals;
    names.reserve(binds.size());
    vals.reserve(binds.size());
    for (const auto& [s, v] : binds) {
      names.push_back(str_id(s->name));
      vals.push_back(ev(v));
    }
    NodeRec& r = d_.nodes[id];
    r.env_global = global;
    r.parent = parent;
    r.syms = std::move(names);
    r.vals = std::move(vals);
  }

  SessionImage::Decoded& d_;
  std::unordered_map<const void*, std::uint32_t> node_ids_;
  std::unordered_map<std::string, std::uint32_t> str_ids_;
  std::unordered_map<const StructType*, std::uint32_t> struct_ids_;
  std::deque<const Obj*> pending_objs_;
  std::deque<const Env*> pending_envs_;
};

std::vector<std::uint8_t> encode(const SessionImage::Decoded& d) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(d.strings.size()));
  for (const auto& s : d.strings) w.str(s);
  w.u32(static_cast<std::uint32_t>(d.structs.size()));
  for (const auto& s : d.structs) {
    w.u32(s.name);
    w.u32(static_cast<std::uint32_t>(s.pointer_fields.size()));
    for (std::uint32_t f : s.pointer_fields) w.u32(f);
    w.u32(static_cast<std::uint32_t>(s.data_fields.size()));
    for (std::uint32_t f : s.data_fields) w.u32(f);
  }
  w.u32(static_cast<std::uint32_t>(d.nodes.size()));
  for (const auto& nd : d.nodes) {
    w.u8(static_cast<std::uint8_t>(nd.tag));
    switch (nd.tag) {
      case NTag::kCons:
        w.ev(nd.a);
        w.ev(nd.d);
        break;
      case NTag::kString:
        w.u32(nd.str);
        break;
      case NTag::kFloat:
        w.u64(nd.fbits);
        break;
      case NTag::kVector:
      case NTag::kTable:
        w.u32(static_cast<std::uint32_t>(nd.vals.size()));
        for (const EV& v : nd.vals) w.ev(v);
        break;
      case NTag::kStruct:
        w.u32(nd.type_idx);
        w.u32(static_cast<std::uint32_t>(nd.vals.size()));
        for (const EV& v : nd.vals) w.ev(v);
        break;
      case NTag::kClosure:
        w.u32(nd.str);
        w.u32(static_cast<std::uint32_t>(nd.syms.size()));
        for (std::uint32_t s : nd.syms) w.u32(s);
        w.u8(nd.has_rest ? 1 : 0);
        if (nd.has_rest) w.u32(nd.rest_sym);
        w.ev(nd.a);
        w.u32(nd.env_idx);
        break;
      case NTag::kEnv:
        w.u32(nd.parent);
        w.u8(nd.env_global ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(nd.syms.size()));
        for (std::size_t i = 0; i < nd.syms.size(); ++i) {
          w.u32(nd.syms[i]);
          w.ev(nd.vals[i]);
        }
        break;
    }
  }
  w.u32(d.global_env);
  w.u32(static_cast<std::uint32_t>(d.program_forms.size()));
  for (const EV& v : d.program_forms) w.ev(v);

  // Prepend the header.
  std::vector<std::uint8_t> blob;
  blob.reserve(32 + w.out.size());
  for (char c : kImageMagic) blob.push_back(static_cast<std::uint8_t>(c));
  Writer h;
  h.u32(kImageFormatVersion);
  h.u32(0);  // flags, reserved
  h.u64(w.out.size());
  h.u64(fnv1a(w.out.data(), w.out.size()));
  blob.insert(blob.end(), h.out.begin(), h.out.end());
  blob.insert(blob.end(), w.out.begin(), w.out.end());
  return blob;
}

std::shared_ptr<SessionImage::Decoded> decode(
    const std::vector<std::uint8_t>& blob) {
  if (blob.size() < 8 || std::memcmp(blob.data(), kImageMagic, 8) != 0)
    throw ImageError("not a curare image (bad magic)");
  if (blob.size() < 32)
    throw ImageError("image truncated: shorter than the 32-byte header");
  Reader hr{blob.data() + 8, 24};
  const std::uint32_t version = hr.u32();
  (void)hr.u32();  // flags
  const std::uint64_t payload_size = hr.u64();
  const std::uint64_t checksum = hr.u64();
  if (version != kImageFormatVersion)
    throw ImageError("image format version mismatch: blob has v" +
                     std::to_string(version) + ", this build reads v" +
                     std::to_string(kImageFormatVersion));
  if (blob.size() - 32 != payload_size)
    throw ImageError("image truncated: header promises " +
                     std::to_string(payload_size) + " payload byte(s), " +
                     std::to_string(blob.size() - 32) + " present");
  if (fnv1a(blob.data() + 32, payload_size) != checksum)
    throw ImageError("image checksum mismatch: blob is corrupt");

  auto d = std::make_shared<SessionImage::Decoded>();
  Reader r{blob.data() + 32, static_cast<std::size_t>(payload_size)};
  const std::uint32_t nstrings = r.u32();
  d->strings.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i) d->strings.push_back(r.str());
  auto check_str = [&](std::uint32_t idx) {
    if (idx >= d->strings.size())
      throw ImageError("image corrupt: string reference out of range");
    return idx;
  };
  const std::uint32_t nstructs = r.u32();
  for (std::uint32_t i = 0; i < nstructs; ++i) {
    StructRec s;
    s.name = check_str(r.u32());
    const std::uint32_t np = r.u32();
    for (std::uint32_t k = 0; k < np; ++k)
      s.pointer_fields.push_back(check_str(r.u32()));
    const std::uint32_t ndt = r.u32();
    for (std::uint32_t k = 0; k < ndt; ++k)
      s.data_fields.push_back(check_str(r.u32()));
    d->structs.push_back(std::move(s));
  }
  const std::uint32_t nnodes = r.u32();
  d->nodes.reserve(nnodes);
  for (std::uint32_t i = 0; i < nnodes; ++i) {
    NodeRec nd;
    const std::uint8_t tag = r.u8();
    if (tag > static_cast<std::uint8_t>(NTag::kEnv))
      throw ImageError("image corrupt: unknown node tag " +
                       std::to_string(tag));
    nd.tag = static_cast<NTag>(tag);
    switch (nd.tag) {
      case NTag::kCons:
        nd.a = r.ev();
        nd.d = r.ev();
        break;
      case NTag::kString:
        nd.str = check_str(r.u32());
        break;
      case NTag::kFloat:
        nd.fbits = r.u64();
        break;
      case NTag::kVector:
      case NTag::kTable: {
        const std::uint32_t n = r.u32();
        nd.vals.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k) nd.vals.push_back(r.ev());
        break;
      }
      case NTag::kStruct: {
        nd.type_idx = r.u32();
        if (nd.type_idx >= d->structs.size())
          throw ImageError("image corrupt: struct type out of range");
        const std::uint32_t n = r.u32();
        nd.vals.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k) nd.vals.push_back(r.ev());
        break;
      }
      case NTag::kClosure: {
        nd.str = check_str(r.u32());
        const std::uint32_t n = r.u32();
        nd.syms.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k)
          nd.syms.push_back(check_str(r.u32()));
        nd.has_rest = r.u8() != 0;
        if (nd.has_rest) nd.rest_sym = check_str(r.u32());
        nd.a = r.ev();
        nd.env_idx = r.u32();
        break;
      }
      case NTag::kEnv: {
        nd.parent = r.u32();
        nd.env_global = r.u8() != 0;
        const std::uint32_t n = r.u32();
        nd.syms.reserve(n);
        nd.vals.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k) {
          nd.syms.push_back(check_str(r.u32()));
          nd.vals.push_back(r.ev());
        }
        break;
      }
    }
    d->nodes.push_back(std::move(nd));
  }
  d->global_env = r.u32();
  const std::uint32_t nforms = r.u32();
  d->program_forms.reserve(nforms);
  for (std::uint32_t i = 0; i < nforms; ++i)
    d->program_forms.push_back(r.ev());
  if (r.off != r.n)
    throw ImageError("image corrupt: " +
                     std::to_string(r.n - r.off) +
                     " trailing byte(s) after the root section");

  // Cross-node reference validation so clone_into can index fearlessly.
  auto check_node = [&](std::uint32_t idx, NTag want) {
    if (idx >= d->nodes.size())
      throw ImageError("image corrupt: node reference out of range");
    if (d->nodes[idx].tag != want)
      throw ImageError("image corrupt: node reference has wrong kind");
  };
  auto check_ev = [&](const EV& v) {
    if (v.tag == VTag::kNode) {
      if (v.payload >= d->nodes.size())
        throw ImageError("image corrupt: value references a missing node");
      if (d->nodes[static_cast<std::size_t>(v.payload)].tag == NTag::kEnv)
        throw ImageError("image corrupt: value references an env frame");
    } else if (v.tag == VTag::kSym || v.tag == VTag::kBuiltin) {
      check_str(static_cast<std::uint32_t>(v.payload));
    }
  };
  for (const NodeRec& nd : d->nodes) {
    check_ev(nd.a);
    check_ev(nd.d);
    for (const EV& v : nd.vals) check_ev(v);
    if (nd.tag == NTag::kClosure && nd.env_idx != kNoNode)
      check_node(nd.env_idx, NTag::kEnv);
    if (nd.tag == NTag::kEnv && nd.parent != kNoNode)
      check_node(nd.parent, NTag::kEnv);
  }
  if (d->global_env != kNoNode) check_node(d->global_env, NTag::kEnv);
  for (const EV& v : d->program_forms) check_ev(v);
  return d;
}

}  // namespace

SessionImage SessionImage::capture(Curare& templ) {
  gc::MutatorScope ms(templ.interp().ctx().heap.gc());
  SessionImage img;
  auto d = std::make_shared<Decoded>();
  Capturer cap(*d);
  // Struct types first, even those with no live instance: the clone
  // re-registers every one so make-X / X-p / accessor builtins exist
  // before builtin references resolve.
  for (const auto& t : templ.interp().struct_types()) cap.struct_id(t.get());
  d->global_env = cap.env_id(templ.interp().global_env().get());
  for (Value f : templ.program_forms())
    d->program_forms.push_back(cap.ev(f));
  cap.drain();
  img.bytes_ = encode(*d);
  img.decoded_ = std::move(d);
  return img;
}

SessionImage SessionImage::from_bytes(std::vector<std::uint8_t> bytes) {
  SessionImage img;
  img.decoded_ = decode(bytes);
  img.bytes_ = std::move(bytes);
  return img;
}

SessionImage SessionImage::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ImageError("cannot open image file " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw ImageError("read error on image file " + path);
  return from_bytes(std::move(bytes));
}

void SessionImage::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ImageError("cannot create image file " + path);
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  out.flush();
  if (!out) throw ImageError("write error on image file " + path);
}

// ---- clone --------------------------------------------------------------

CloneStats SessionImage::clone_into(Curare& target) const {
  if (!decoded_) throw ImageError("clone from an empty image");
  const Decoded& d = *decoded_;
  const auto t0 = std::chrono::steady_clock::now();
  CloneStats stats;

  sexpr::Ctx& ctx = target.interp().ctx();
  gc::GcHeap& gc = ctx.heap.gc();
  // One unsafe region across the whole materialization: half-fixed
  // nodes are never visible to a collection.
  gc::MutatorScope ms(gc);
  // Bulk reservation: one lock acquisition pre-builds enough bump
  // blocks that the allocation loop below never takes the heap-growth
  // path. 64 bytes/node over-estimates conses and under-estimates big
  // vectors; refill falls back to normal growth if it runs short.
  stats.blocks_reserved = gc.reserve_blocks(d.nodes.size() * 64);

  // Pass 0: re-register struct types through the interpreter's own
  // defstruct path, so instances get their shared_ptr type and the
  // make-/pred/accessor builtins exist for reference resolution.
  for (const StructRec& s : d.structs) {
    std::vector<Value> ptrs{Value::object(ctx.symbols.intern("pointers"))};
    for (std::uint32_t f : s.pointer_fields)
      ptrs.push_back(Value::object(ctx.symbols.intern(d.strings[f])));
    std::vector<Value> data{Value::object(ctx.symbols.intern("data"))};
    for (std::uint32_t f : s.data_fields)
      data.push_back(Value::object(ctx.symbols.intern(d.strings[f])));
    Value form = ctx.list({Value::object(ctx.symbols.intern("defstruct")),
                           Value::object(ctx.symbols.intern(d.strings[s.name])),
                           ctx.list(ptrs), ctx.list(data)});
    target.interp().eval_top(form);
  }

  const EnvPtr& global = target.interp().global_env();
  auto resolve_builtin = [&](std::uint32_t str_idx) {
    const std::string& name = d.strings[str_idx];
    Value v = target.interp().global(name);
    if (!v.is(Kind::Builtin))
      throw ImageError("image references builtin '" + name +
                       "' which is not installed in this session");
    return v;
  };

  std::vector<Obj*> objs(d.nodes.size(), nullptr);
  std::vector<EnvPtr> envs(d.nodes.size());

  auto decode_ev = [&](const EV& v) -> Value {
    switch (v.tag) {
      case VTag::kNil:
        return Value::nil();
      case VTag::kFixnum:
        return Value::fixnum(static_cast<std::int64_t>(v.payload));
      case VTag::kSym:
        return Value::object(ctx.symbols.intern(
            d.strings[static_cast<std::size_t>(v.payload)]));
      case VTag::kBuiltin:
        return resolve_builtin(static_cast<std::uint32_t>(v.payload));
      case VTag::kNode:
        return Value::object(objs[static_cast<std::size_t>(v.payload)]);
    }
    return Value::nil();
  };

  // Pass 1: bump-allocate every non-closure heap object with
  // placeholder contents, establishing final addresses for fixup.
  sexpr::Heap& heap = ctx.heap;
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    const NodeRec& nd = d.nodes[i];
    switch (nd.tag) {
      case NTag::kCons:
        objs[i] = heap.alloc<Cons>(Value::nil(), Value::nil());
        break;
      case NTag::kString:
        objs[i] = heap.alloc<String>(d.strings[nd.str]);
        break;
      case NTag::kFloat:
        objs[i] =
            heap.alloc<Float>(std::bit_cast<double>(nd.fbits));
        break;
      case NTag::kVector:
        objs[i] = heap.alloc<Vector>();
        break;
      case NTag::kTable:
        objs[i] = heap.alloc<Table>();
        break;
      case NTag::kStruct: {
        auto type = target.interp().struct_type(ctx.symbols.intern(
            d.strings[d.structs[nd.type_idx].name]));
        if (!type)
          throw ImageError("image struct type " +
                           d.strings[d.structs[nd.type_idx].name] +
                           " failed to re-register");
        if (type->slot_count() != nd.vals.size())
          throw ImageError("image corrupt: struct slot count mismatch");
        objs[i] = heap.alloc<Instance>(std::move(type));
        break;
      }
      case NTag::kClosure:
      case NTag::kEnv:
        break;  // passes 2–3
    }
    if (objs[i] != nullptr) ++stats.nodes;
  }

  // Pass 2: rebuild env frames parent-first. The captured global frame
  // maps onto the target session's existing global env (bindings merge
  // in pass 4); local frames are fresh.
  std::function<EnvPtr(std::uint32_t)> build_env =
      [&](std::uint32_t id) -> EnvPtr {
    if (envs[id]) return envs[id];
    const NodeRec& nd = d.nodes[id];
    if (nd.env_global) {
      envs[id] = global;
      return envs[id];
    }
    EnvPtr parent =
        nd.parent == kNoNode ? EnvPtr() : build_env(nd.parent);
    envs[id] = Env::make_local(std::move(parent));
    ++stats.env_frames;
    return envs[id];
  };
  for (std::size_t i = 0; i < d.nodes.size(); ++i)
    if (d.nodes[i].tag == NTag::kEnv) build_env(static_cast<std::uint32_t>(i));

  // Pass 3: construct closures (const body/env fields need both in
  // hand). A closure body is almost always a cons tree from pass 1; a
  // body that is directly another closure resolves in a later round.
  std::vector<std::uint32_t> todo;
  for (std::size_t i = 0; i < d.nodes.size(); ++i)
    if (d.nodes[i].tag == NTag::kClosure)
      todo.push_back(static_cast<std::uint32_t>(i));
  while (!todo.empty()) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t id : todo) {
      const NodeRec& nd = d.nodes[id];
      if (nd.a.tag == VTag::kNode &&
          objs[static_cast<std::size_t>(nd.a.payload)] == nullptr) {
        next.push_back(id);
        continue;
      }
      std::vector<Symbol*> params;
      params.reserve(nd.syms.size());
      for (std::uint32_t s : nd.syms)
        params.push_back(ctx.symbols.intern(d.strings[s]));
      Symbol* rest =
          nd.has_rest ? ctx.symbols.intern(d.strings[nd.rest_sym]) : nullptr;
      EnvPtr env = nd.env_idx == kNoNode ? global : envs[nd.env_idx];
      // Fresh Closure ⇒ code_state starts at kCodeUnknown: compiled
      // code and refusal verdicts never cross the image boundary.
      objs[id] = heap.alloc<Closure>(d.strings[nd.str], std::move(params),
                                     rest, decode_ev(nd.a), std::move(env));
      ++stats.nodes;
    }
    if (next.size() == todo.size())
      throw ImageError(
          "image corrupt: closure bodies form an unresolvable cycle");
    todo = std::move(next);
  }

  // Pass 4: fix up every slot now that all addresses exist.
  for (std::size_t i = 0; i < d.nodes.size(); ++i) {
    const NodeRec& nd = d.nodes[i];
    switch (nd.tag) {
      case NTag::kCons: {
        auto* c = static_cast<Cons*>(objs[i]);
        c->set_car(decode_ev(nd.a));
        c->set_cdr(decode_ev(nd.d));
        break;
      }
      case NTag::kVector: {
        auto* v = static_cast<Vector*>(objs[i]);
        v->items.reserve(nd.vals.size());
        for (const EV& x : nd.vals) v->items.push_back(decode_ev(x));
        break;
      }
      case NTag::kTable: {
        auto* t = static_cast<Table*>(objs[i]);
        for (std::size_t k = 0; k + 1 < nd.vals.size(); k += 2)
          t->put(decode_ev(nd.vals[k]), decode_ev(nd.vals[k + 1]));
        break;
      }
      case NTag::kStruct: {
        auto* inst = static_cast<Instance*>(objs[i]);
        for (std::size_t k = 0; k < nd.vals.size(); ++k)
          inst->set(static_cast<int>(k), decode_ev(nd.vals[k]));
        break;
      }
      case NTag::kEnv: {
        const EnvPtr& e = envs[i];
        if (nd.env_global) {
          // Merge into the target's live global frame. A captured
          // builtin reference whose name the target already binds to a
          // builtin is skipped — the target's own registration (same
          // name, this session's interpreter) wins; everything else,
          // including prelude shadowings of builtin names, is installed.
          for (std::size_t k = 0; k < nd.syms.size(); ++k) {
            Symbol* s = ctx.symbols.intern(d.strings[nd.syms[k]]);
            const EV& v = nd.vals[k];
            if (v.tag == VTag::kBuiltin) {
              auto existing = e->lookup(s);
              if (existing && existing->is(Kind::Builtin)) continue;
            }
            e->define(s, decode_ev(v));
            ++stats.bindings;
          }
        } else {
          for (std::size_t k = 0; k < nd.syms.size(); ++k)
            e->define(ctx.symbols.intern(d.strings[nd.syms[k]]),
                      decode_ev(nd.vals[k]));
        }
        break;
      }
      default:
        break;
    }
  }

  // Roots: hand the program forms to the driver so analyzer state
  // (defuns, declarations, summaries) matches the template session.
  std::vector<Value> forms;
  forms.reserve(d.program_forms.size());
  for (const EV& v : d.program_forms) forms.push_back(decode_ev(v));
  target.adopt_program_forms(forms);

  stats.ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return stats;
}

}  // namespace curare::image
