# Empty compiler generated dependencies file for bench_lock_overhead.
# This may be replaced when dependencies are built.
