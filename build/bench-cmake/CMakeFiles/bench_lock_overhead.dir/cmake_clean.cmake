file(REMOVE_RECURSE
  "../bench/bench_lock_overhead"
  "../bench/bench_lock_overhead.pdb"
  "CMakeFiles/bench_lock_overhead.dir/bench_lock_overhead.cpp.o"
  "CMakeFiles/bench_lock_overhead.dir/bench_lock_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
