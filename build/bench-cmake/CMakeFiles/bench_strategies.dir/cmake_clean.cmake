file(REMOVE_RECURSE
  "../bench/bench_strategies"
  "../bench/bench_strategies.pdb"
  "CMakeFiles/bench_strategies.dir/bench_strategies.cpp.o"
  "CMakeFiles/bench_strategies.dir/bench_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
