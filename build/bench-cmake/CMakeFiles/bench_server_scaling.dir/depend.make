# Empty dependencies file for bench_server_scaling.
# This may be replaced when dependencies are built.
