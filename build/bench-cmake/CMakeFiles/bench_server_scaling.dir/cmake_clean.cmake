file(REMOVE_RECURSE
  "../bench/bench_server_scaling"
  "../bench/bench_server_scaling.pdb"
  "CMakeFiles/bench_server_scaling.dir/bench_server_scaling.cpp.o"
  "CMakeFiles/bench_server_scaling.dir/bench_server_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
