# Empty dependencies file for bench_conflict_distance.
# This may be replaced when dependencies are built.
