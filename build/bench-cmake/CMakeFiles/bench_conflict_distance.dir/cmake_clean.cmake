file(REMOVE_RECURSE
  "../bench/bench_conflict_distance"
  "../bench/bench_conflict_distance.pdb"
  "CMakeFiles/bench_conflict_distance.dir/bench_conflict_distance.cpp.o"
  "CMakeFiles/bench_conflict_distance.dir/bench_conflict_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
