file(REMOVE_RECURSE
  "../bench/bench_rec2iter"
  "../bench/bench_rec2iter.pdb"
  "CMakeFiles/bench_rec2iter.dir/bench_rec2iter.cpp.o"
  "CMakeFiles/bench_rec2iter.dir/bench_rec2iter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rec2iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
