# Empty dependencies file for bench_rec2iter.
# This may be replaced when dependencies are built.
