# Empty dependencies file for bench_dps.
# This may be replaced when dependencies are built.
