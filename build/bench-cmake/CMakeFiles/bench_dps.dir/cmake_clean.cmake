file(REMOVE_RECURSE
  "../bench/bench_dps"
  "../bench/bench_dps.pdb"
  "CMakeFiles/bench_dps.dir/bench_dps.cpp.o"
  "CMakeFiles/bench_dps.dir/bench_dps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
