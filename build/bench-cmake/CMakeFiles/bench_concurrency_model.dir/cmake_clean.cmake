file(REMOVE_RECURSE
  "../bench/bench_concurrency_model"
  "../bench/bench_concurrency_model.pdb"
  "CMakeFiles/bench_concurrency_model.dir/bench_concurrency_model.cpp.o"
  "CMakeFiles/bench_concurrency_model.dir/bench_concurrency_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
