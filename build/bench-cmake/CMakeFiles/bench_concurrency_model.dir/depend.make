# Empty dependencies file for bench_concurrency_model.
# This may be replaced when dependencies are built.
