file(REMOVE_RECURSE
  "../bench/bench_conflict_detect"
  "../bench/bench_conflict_detect.pdb"
  "CMakeFiles/bench_conflict_detect.dir/bench_conflict_detect.cpp.o"
  "CMakeFiles/bench_conflict_detect.dir/bench_conflict_detect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conflict_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
