# Empty dependencies file for bench_conflict_detect.
# This may be replaced when dependencies are built.
