# Empty compiler generated dependencies file for conflict_report.
# This may be replaced when dependencies are built.
