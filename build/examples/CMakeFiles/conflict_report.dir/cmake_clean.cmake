file(REMOVE_RECURSE
  "CMakeFiles/conflict_report.dir/conflict_report.cpp.o"
  "CMakeFiles/conflict_report.dir/conflict_report.cpp.o.d"
  "conflict_report"
  "conflict_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
