file(REMOVE_RECURSE
  "CMakeFiles/symbolic_math.dir/symbolic_math.cpp.o"
  "CMakeFiles/symbolic_math.dir/symbolic_math.cpp.o.d"
  "symbolic_math"
  "symbolic_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
