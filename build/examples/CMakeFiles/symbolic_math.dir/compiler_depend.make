# Empty compiler generated dependencies file for symbolic_math.
# This may be replaced when dependencies are built.
