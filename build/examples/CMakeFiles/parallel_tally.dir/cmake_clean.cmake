file(REMOVE_RECURSE
  "CMakeFiles/parallel_tally.dir/parallel_tally.cpp.o"
  "CMakeFiles/parallel_tally.dir/parallel_tally.cpp.o.d"
  "parallel_tally"
  "parallel_tally.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tally.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
