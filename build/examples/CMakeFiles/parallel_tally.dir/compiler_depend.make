# Empty compiler generated dependencies file for parallel_tally.
# This may be replaced when dependencies are built.
