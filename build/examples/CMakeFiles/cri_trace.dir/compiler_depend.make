# Empty compiler generated dependencies file for cri_trace.
# This may be replaced when dependencies are built.
