file(REMOVE_RECURSE
  "CMakeFiles/cri_trace.dir/cri_trace.cpp.o"
  "CMakeFiles/cri_trace.dir/cri_trace.cpp.o.d"
  "cri_trace"
  "cri_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cri_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
