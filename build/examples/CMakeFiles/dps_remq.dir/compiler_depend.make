# Empty compiler generated dependencies file for dps_remq.
# This may be replaced when dependencies are built.
