file(REMOVE_RECURSE
  "CMakeFiles/dps_remq.dir/dps_remq.cpp.o"
  "CMakeFiles/dps_remq.dir/dps_remq.cpp.o.d"
  "dps_remq"
  "dps_remq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dps_remq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
