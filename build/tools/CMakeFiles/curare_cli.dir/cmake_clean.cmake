file(REMOVE_RECURSE
  "CMakeFiles/curare_cli.dir/curare_cli.cpp.o"
  "CMakeFiles/curare_cli.dir/curare_cli.cpp.o.d"
  "curare"
  "curare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
