# Empty dependencies file for curare_cli.
# This may be replaced when dependencies are built.
