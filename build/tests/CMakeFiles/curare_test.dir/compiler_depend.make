# Empty compiler generated dependencies file for curare_test.
# This may be replaced when dependencies are built.
