file(REMOVE_RECURSE
  "CMakeFiles/curare_test.dir/curare/curare_test.cpp.o"
  "CMakeFiles/curare_test.dir/curare/curare_test.cpp.o.d"
  "CMakeFiles/curare_test.dir/curare/property_test.cpp.o"
  "CMakeFiles/curare_test.dir/curare/property_test.cpp.o.d"
  "CMakeFiles/curare_test.dir/curare/struct_sapp_test.cpp.o"
  "CMakeFiles/curare_test.dir/curare/struct_sapp_test.cpp.o.d"
  "curare_test"
  "curare_test.pdb"
  "curare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
