file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/accessor_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/accessor_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/array_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/array_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/canon_extract_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/canon_extract_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/conflict_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/conflict_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/extract_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/extract_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/headtail_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/headtail_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/sapp_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/sapp_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/summary_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/summary_test.cpp.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
