file(REMOVE_RECURSE
  "CMakeFiles/decl_test.dir/decl/declarations_test.cpp.o"
  "CMakeFiles/decl_test.dir/decl/declarations_test.cpp.o.d"
  "decl_test"
  "decl_test.pdb"
  "decl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
