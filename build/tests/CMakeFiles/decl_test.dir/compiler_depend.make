# Empty compiler generated dependencies file for decl_test.
# This may be replaced when dependencies are built.
