
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/lock_insert_test.cpp" "tests/CMakeFiles/transform_test.dir/transform/lock_insert_test.cpp.o" "gcc" "tests/CMakeFiles/transform_test.dir/transform/lock_insert_test.cpp.o.d"
  "/root/repo/tests/transform/transforms_test.cpp" "tests/CMakeFiles/transform_test.dir/transform/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/transform_test.dir/transform/transforms_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/curare/CMakeFiles/curare_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/curare_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lisp/CMakeFiles/curare_lisp.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/curare_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/curare_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/decl/CMakeFiles/curare_decl.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/curare_sexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
