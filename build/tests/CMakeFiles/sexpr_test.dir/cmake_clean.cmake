file(REMOVE_RECURSE
  "CMakeFiles/sexpr_test.dir/sexpr/equal_test.cpp.o"
  "CMakeFiles/sexpr_test.dir/sexpr/equal_test.cpp.o.d"
  "CMakeFiles/sexpr_test.dir/sexpr/heap_test.cpp.o"
  "CMakeFiles/sexpr_test.dir/sexpr/heap_test.cpp.o.d"
  "CMakeFiles/sexpr_test.dir/sexpr/printer_test.cpp.o"
  "CMakeFiles/sexpr_test.dir/sexpr/printer_test.cpp.o.d"
  "CMakeFiles/sexpr_test.dir/sexpr/reader_test.cpp.o"
  "CMakeFiles/sexpr_test.dir/sexpr/reader_test.cpp.o.d"
  "CMakeFiles/sexpr_test.dir/sexpr/value_test.cpp.o"
  "CMakeFiles/sexpr_test.dir/sexpr/value_test.cpp.o.d"
  "sexpr_test"
  "sexpr_test.pdb"
  "sexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
