# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sexpr_test[1]_include.cmake")
include("/root/repo/build/tests/lisp_test[1]_include.cmake")
include("/root/repo/build/tests/decl_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/curare_test[1]_include.cmake")
add_test(cli_batch_paper_figures "/root/repo/build/tools/curare" "/root/repo/examples/lisp/paper_figures.lisp")
set_tests_properties(cli_batch_paper_figures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_eval "/root/repo/build/tools/curare" "-e" "(print (+ 40 2))")
set_tests_properties(cli_eval PROPERTIES  PASS_REGULAR_EXPRESSION "42" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_dps_remq "/root/repo/build/examples/dps_remq")
set_tests_properties(example_dps_remq PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_conflict_report "/root/repo/build/examples/conflict_report")
set_tests_properties(example_conflict_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_parallel_tally "/root/repo/build/examples/parallel_tally")
set_tests_properties(example_parallel_tally PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_cri_trace "/root/repo/build/examples/cri_trace")
set_tests_properties(example_cri_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_symbolic_math "/root/repo/build/examples/symbolic_math")
set_tests_properties(example_symbolic_math PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;45;add_test;/root/repo/tests/CMakeLists.txt;0;")
