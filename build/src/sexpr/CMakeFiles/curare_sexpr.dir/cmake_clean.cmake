file(REMOVE_RECURSE
  "CMakeFiles/curare_sexpr.dir/equal.cpp.o"
  "CMakeFiles/curare_sexpr.dir/equal.cpp.o.d"
  "CMakeFiles/curare_sexpr.dir/list_ops.cpp.o"
  "CMakeFiles/curare_sexpr.dir/list_ops.cpp.o.d"
  "CMakeFiles/curare_sexpr.dir/printer.cpp.o"
  "CMakeFiles/curare_sexpr.dir/printer.cpp.o.d"
  "CMakeFiles/curare_sexpr.dir/reader.cpp.o"
  "CMakeFiles/curare_sexpr.dir/reader.cpp.o.d"
  "CMakeFiles/curare_sexpr.dir/symbol_table.cpp.o"
  "CMakeFiles/curare_sexpr.dir/symbol_table.cpp.o.d"
  "CMakeFiles/curare_sexpr.dir/value.cpp.o"
  "CMakeFiles/curare_sexpr.dir/value.cpp.o.d"
  "libcurare_sexpr.a"
  "libcurare_sexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_sexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
