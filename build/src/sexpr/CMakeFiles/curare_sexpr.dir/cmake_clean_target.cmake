file(REMOVE_RECURSE
  "libcurare_sexpr.a"
)
