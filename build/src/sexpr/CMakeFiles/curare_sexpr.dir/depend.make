# Empty dependencies file for curare_sexpr.
# This may be replaced when dependencies are built.
