
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sexpr/equal.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/equal.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/equal.cpp.o.d"
  "/root/repo/src/sexpr/list_ops.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/list_ops.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/list_ops.cpp.o.d"
  "/root/repo/src/sexpr/printer.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/printer.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/printer.cpp.o.d"
  "/root/repo/src/sexpr/reader.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/reader.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/reader.cpp.o.d"
  "/root/repo/src/sexpr/symbol_table.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/symbol_table.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/symbol_table.cpp.o.d"
  "/root/repo/src/sexpr/value.cpp" "src/sexpr/CMakeFiles/curare_sexpr.dir/value.cpp.o" "gcc" "src/sexpr/CMakeFiles/curare_sexpr.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
