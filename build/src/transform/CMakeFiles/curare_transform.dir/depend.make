# Empty dependencies file for curare_transform.
# This may be replaced when dependencies are built.
