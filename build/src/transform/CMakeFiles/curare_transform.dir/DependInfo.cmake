
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/cri.cpp" "src/transform/CMakeFiles/curare_transform.dir/cri.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/cri.cpp.o.d"
  "/root/repo/src/transform/delay.cpp" "src/transform/CMakeFiles/curare_transform.dir/delay.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/delay.cpp.o.d"
  "/root/repo/src/transform/dps.cpp" "src/transform/CMakeFiles/curare_transform.dir/dps.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/dps.cpp.o.d"
  "/root/repo/src/transform/lock_insert.cpp" "src/transform/CMakeFiles/curare_transform.dir/lock_insert.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/lock_insert.cpp.o.d"
  "/root/repo/src/transform/rec2iter.cpp" "src/transform/CMakeFiles/curare_transform.dir/rec2iter.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/rec2iter.cpp.o.d"
  "/root/repo/src/transform/reorder.cpp" "src/transform/CMakeFiles/curare_transform.dir/reorder.cpp.o" "gcc" "src/transform/CMakeFiles/curare_transform.dir/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/curare_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/decl/CMakeFiles/curare_decl.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/curare_sexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
