file(REMOVE_RECURSE
  "CMakeFiles/curare_transform.dir/cri.cpp.o"
  "CMakeFiles/curare_transform.dir/cri.cpp.o.d"
  "CMakeFiles/curare_transform.dir/delay.cpp.o"
  "CMakeFiles/curare_transform.dir/delay.cpp.o.d"
  "CMakeFiles/curare_transform.dir/dps.cpp.o"
  "CMakeFiles/curare_transform.dir/dps.cpp.o.d"
  "CMakeFiles/curare_transform.dir/lock_insert.cpp.o"
  "CMakeFiles/curare_transform.dir/lock_insert.cpp.o.d"
  "CMakeFiles/curare_transform.dir/rec2iter.cpp.o"
  "CMakeFiles/curare_transform.dir/rec2iter.cpp.o.d"
  "CMakeFiles/curare_transform.dir/reorder.cpp.o"
  "CMakeFiles/curare_transform.dir/reorder.cpp.o.d"
  "libcurare_transform.a"
  "libcurare_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
