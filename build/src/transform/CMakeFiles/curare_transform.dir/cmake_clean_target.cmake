file(REMOVE_RECURSE
  "libcurare_transform.a"
)
