file(REMOVE_RECURSE
  "libcurare_runtime.a"
)
