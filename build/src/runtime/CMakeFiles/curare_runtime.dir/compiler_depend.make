# Empty compiler generated dependencies file for curare_runtime.
# This may be replaced when dependencies are built.
