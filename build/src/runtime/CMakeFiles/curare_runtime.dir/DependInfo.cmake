
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/future_pool.cpp" "src/runtime/CMakeFiles/curare_runtime.dir/future_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/curare_runtime.dir/future_pool.cpp.o.d"
  "/root/repo/src/runtime/lock_manager.cpp" "src/runtime/CMakeFiles/curare_runtime.dir/lock_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/curare_runtime.dir/lock_manager.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/curare_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/curare_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/server_pool.cpp" "src/runtime/CMakeFiles/curare_runtime.dir/server_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/curare_runtime.dir/server_pool.cpp.o.d"
  "/root/repo/src/runtime/sim.cpp" "src/runtime/CMakeFiles/curare_runtime.dir/sim.cpp.o" "gcc" "src/runtime/CMakeFiles/curare_runtime.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lisp/CMakeFiles/curare_lisp.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/curare_sexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
