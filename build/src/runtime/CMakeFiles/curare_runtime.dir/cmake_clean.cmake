file(REMOVE_RECURSE
  "CMakeFiles/curare_runtime.dir/future_pool.cpp.o"
  "CMakeFiles/curare_runtime.dir/future_pool.cpp.o.d"
  "CMakeFiles/curare_runtime.dir/lock_manager.cpp.o"
  "CMakeFiles/curare_runtime.dir/lock_manager.cpp.o.d"
  "CMakeFiles/curare_runtime.dir/runtime.cpp.o"
  "CMakeFiles/curare_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/curare_runtime.dir/server_pool.cpp.o"
  "CMakeFiles/curare_runtime.dir/server_pool.cpp.o.d"
  "CMakeFiles/curare_runtime.dir/sim.cpp.o"
  "CMakeFiles/curare_runtime.dir/sim.cpp.o.d"
  "libcurare_runtime.a"
  "libcurare_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
