# Empty compiler generated dependencies file for curare_lisp.
# This may be replaced when dependencies are built.
