file(REMOVE_RECURSE
  "libcurare_lisp.a"
)
