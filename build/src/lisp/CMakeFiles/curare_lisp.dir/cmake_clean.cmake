file(REMOVE_RECURSE
  "CMakeFiles/curare_lisp.dir/builtins.cpp.o"
  "CMakeFiles/curare_lisp.dir/builtins.cpp.o.d"
  "CMakeFiles/curare_lisp.dir/interp.cpp.o"
  "CMakeFiles/curare_lisp.dir/interp.cpp.o.d"
  "libcurare_lisp.a"
  "libcurare_lisp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_lisp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
