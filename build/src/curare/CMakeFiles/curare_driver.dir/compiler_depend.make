# Empty compiler generated dependencies file for curare_driver.
# This may be replaced when dependencies are built.
