file(REMOVE_RECURSE
  "libcurare_driver.a"
)
