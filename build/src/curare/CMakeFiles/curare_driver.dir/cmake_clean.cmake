file(REMOVE_RECURSE
  "CMakeFiles/curare_driver.dir/curare.cpp.o"
  "CMakeFiles/curare_driver.dir/curare.cpp.o.d"
  "CMakeFiles/curare_driver.dir/struct_sapp.cpp.o"
  "CMakeFiles/curare_driver.dir/struct_sapp.cpp.o.d"
  "libcurare_driver.a"
  "libcurare_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
