# CMake generated Testfile for 
# Source directory: /root/repo/src/decl
# Build directory: /root/repo/build/src/decl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
