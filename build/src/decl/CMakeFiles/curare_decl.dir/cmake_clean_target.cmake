file(REMOVE_RECURSE
  "libcurare_decl.a"
)
