file(REMOVE_RECURSE
  "CMakeFiles/curare_decl.dir/declarations.cpp.o"
  "CMakeFiles/curare_decl.dir/declarations.cpp.o.d"
  "libcurare_decl.a"
  "libcurare_decl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_decl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
