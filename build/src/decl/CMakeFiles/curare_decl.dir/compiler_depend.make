# Empty compiler generated dependencies file for curare_decl.
# This may be replaced when dependencies are built.
