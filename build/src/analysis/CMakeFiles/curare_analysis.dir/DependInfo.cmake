
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/array.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/array.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/array.cpp.o.d"
  "/root/repo/src/analysis/conflict.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/conflict.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/conflict.cpp.o.d"
  "/root/repo/src/analysis/effects.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/effects.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/effects.cpp.o.d"
  "/root/repo/src/analysis/extract.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/extract.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/extract.cpp.o.d"
  "/root/repo/src/analysis/headtail.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/headtail.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/headtail.cpp.o.d"
  "/root/repo/src/analysis/path_regex.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/path_regex.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/path_regex.cpp.o.d"
  "/root/repo/src/analysis/sapp.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/sapp.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/sapp.cpp.o.d"
  "/root/repo/src/analysis/summary.cpp" "src/analysis/CMakeFiles/curare_analysis.dir/summary.cpp.o" "gcc" "src/analysis/CMakeFiles/curare_analysis.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sexpr/CMakeFiles/curare_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/decl/CMakeFiles/curare_decl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
