# Empty compiler generated dependencies file for curare_analysis.
# This may be replaced when dependencies are built.
