file(REMOVE_RECURSE
  "libcurare_analysis.a"
)
