file(REMOVE_RECURSE
  "CMakeFiles/curare_analysis.dir/array.cpp.o"
  "CMakeFiles/curare_analysis.dir/array.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/conflict.cpp.o"
  "CMakeFiles/curare_analysis.dir/conflict.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/effects.cpp.o"
  "CMakeFiles/curare_analysis.dir/effects.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/extract.cpp.o"
  "CMakeFiles/curare_analysis.dir/extract.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/headtail.cpp.o"
  "CMakeFiles/curare_analysis.dir/headtail.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/path_regex.cpp.o"
  "CMakeFiles/curare_analysis.dir/path_regex.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/sapp.cpp.o"
  "CMakeFiles/curare_analysis.dir/sapp.cpp.o.d"
  "CMakeFiles/curare_analysis.dir/summary.cpp.o"
  "CMakeFiles/curare_analysis.dir/summary.cpp.o.d"
  "libcurare_analysis.a"
  "libcurare_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curare_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
